"""Execution tracing for SPMD runs.

Attach a :class:`Tracer` to a :class:`~repro.machine.engine.Machine` to
record a structured event stream — sends, receives, collectives and phase
switches, each stamped with the acting rank's simulated clock.  Useful for
debugging communication patterns (who talked to whom, when), verifying
schedules (the linear permutation's step structure is plainly visible),
and rendering per-rank phase timelines.

Tracing is opt-in and has zero cost when absent; determinism of the run is
unaffected either way.

Example::

    tracer = Tracer()
    machine = Machine(4, CM5, tracer=tracer)
    machine.run(program)
    print(tracer.summary())
    for ev in tracer.events_of_kind("send"):
        print(ev)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    ``kind`` is one of ``"send"``, ``"recv"``, ``"phase"``,
    ``"collective"``.  ``time`` is the acting rank's clock *after* the
    event took effect.  ``detail`` is kind-specific:

    * send: ``{"dest": int, "tag": int, "words": int}``
    * recv: ``{"source": int, "tag": int, "words": int}``
    * phase: ``{"name": str}``
    * collective: ``{"op": str, "group_size": int}``
    """

    time: float
    rank: int
    kind: str
    detail: dict

    def to_dict(self) -> dict[str, Any]:
        """Stable, JSON-serializable form: fixed top-level keys, with the
        kind-specific payload under ``"detail"`` (exporter contract)."""
        return {
            "time": self.time,
            "rank": self.rank,
            "kind": self.kind,
            "detail": dict(self.detail),
        }

    def __str__(self) -> str:
        items = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time * 1e6:10.2f}us] rank {self.rank}: {self.kind} {items}"


class Tracer:
    """Collects :class:`TraceEvent` records during a run.

    A tracer may be reused across runs; :meth:`clear` resets it.  Events
    are appended in simulation order (deterministic), not global time
    order — sort by ``(time, rank)`` for a timeline view, which
    :meth:`sorted_events` does.
    """

    def __init__(self, capture_phases: bool = True):
        self.capture_phases = capture_phases
        self.events: list[TraceEvent] = []

    # ------------------------------------------------------------ recording
    def record(self, time: float, rank: int, kind: str, **detail: Any) -> None:
        self.events.append(TraceEvent(time=time, rank=rank, kind=kind, detail=detail))

    def clear(self) -> None:
        self.events.clear()

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.events)

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        """Events of one kind, in simulation order.

        Safe on an empty tracer (returns ``[]``); a non-string ``kind`` is
        rejected eagerly since it could never match and usually means the
        caller swapped the arguments.
        """
        if not isinstance(kind, str):
            raise TypeError(f"kind must be a string, got {type(kind).__name__}")
        return [e for e in self.events if e.kind == kind]

    def events_of_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def sorted_events(self) -> list[TraceEvent]:
        return sorted(self.events, key=lambda e: (e.time, e.rank))

    def message_pairs(self) -> list[tuple[int, int, int]]:
        """(source, dest, words) of every traced send, in issue order."""
        return [
            (e.rank, e.detail["dest"], e.detail["words"])
            for e in self.events
            if e.kind == "send"
        ]

    def phase_sequence(self, rank: int) -> list[str]:
        """The phase names rank entered, in order."""
        return [
            e.detail["name"]
            for e in self.events
            if e.kind == "phase" and e.rank == rank
        ]

    # ------------------------------------------------------------ reporting
    def summary(self) -> str:
        if not self.events:
            return "no events recorded"
        counts = Counter(e.kind for e in self.events)
        words = sum(e.detail.get("words", 0) for e in self.events if e.kind == "send")
        parts = [f"{len(self.events)} events"]
        for kind in ("send", "recv", "collective", "phase"):
            if counts.get(kind):
                parts.append(f"{kind}s={counts[kind]}")
        parts.append(f"words={words}")
        return " ".join(parts)

    def communication_matrix(self, nprocs: int):
        """``nprocs x nprocs`` word-count matrix from traced sends."""
        import numpy as np

        m = np.zeros((nprocs, nprocs), dtype=np.int64)
        for src, dst, words in self.message_pairs():
            m[src, dst] += words
        return m

    def to_chrome_trace(self, nprocs: int, run=None) -> list[dict]:
        """Export as Chrome trace-event JSON (load in chrome://tracing or
        https://ui.perfetto.dev).

        Phases become duration events (one track per rank), messages
        become flow arrows from send to receive, collectives become
        instants.  Times are microseconds, as the format requires.

        Delegates to :func:`repro.obs.chrome_trace.build_chrome_trace`;
        pass the :class:`~repro.machine.stats.RunResult` as ``run`` for
        exact per-rank end-of-run clocks (and see
        :func:`repro.obs.chrome_trace.write_chrome_trace` for writing a
        complete trace file).
        """
        from ..obs.chrome_trace import build_chrome_trace

        return build_chrome_trace(self, run=run, nprocs=nprocs)

    def timeline(self, nprocs: int, width: int = 64) -> str:
        """ASCII phase timeline: one lane per rank, one glyph per slot.

        Each phase gets a letter (in order of first appearance); idle time
        before the first event is blank.  Coarse but enough to eyeball
        phase skew across ranks.
        """
        phase_events = [e for e in self.events if e.kind == "phase"]
        if not phase_events:
            return "(no phase events traced)"
        t_max = max(e.time for e in self.events)
        if t_max <= 0:
            t_max = 1.0
        letters: dict[str, str] = {}
        for e in phase_events:
            name = e.detail["name"]
            if name not in letters:
                letters[name] = chr(ord("a") + (len(letters) % 26))
        lanes = []
        for r in range(nprocs):
            spans = [
                (e.time, e.detail["name"])
                for e in phase_events
                if e.rank == r
            ]
            lane = [" "] * width
            for i, (start, name) in enumerate(spans):
                end = spans[i + 1][0] if i + 1 < len(spans) else t_max
                a = min(width - 1, int(start / t_max * width))
                b = min(width, max(a + 1, int(end / t_max * width)))
                for j in range(a, b):
                    lane[j] = letters[name]
            lanes.append(f"r{r:<3d} |" + "".join(lane) + "|")
        legend = "  ".join(f"{v}={k}" for k, v in letters.items())
        return "\n".join(lanes + [legend])
