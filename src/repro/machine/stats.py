"""Per-processor and per-run statistics.

The simulator's observable output is time.  Each rank owns a local clock
that advances under three influences: local work (``delta * ops``),
message costs (``tau + mu * words`` on the sender; receivers wait for the
arrival time), and collective synchronization (clocks meet at the group
maximum).  Because the algorithms in this library are loosely synchronous,
the *reported* time of a phase is the maximum over ranks of that phase's
clock advance — exactly what a wall clock around the phase would measure on
a real machine.

Phases are named hierarchically with dot-separated components
(``"pack.ranking.scan"``).  :meth:`RunResult.phase_time` accepts a prefix,
so ``phase_time("pack.ranking")`` aggregates every sub-phase under it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .errors import PhaseError, TimeDomainError

__all__ = [
    "ProcStats",
    "RunResult",
    "DEFAULT_PHASE",
    "TIME_DOMAINS",
    "same_time_domain",
    "stats_from_snapshot",
]

#: Phase used before a program sets one explicitly.
DEFAULT_PHASE = "unphased"

#: Legal values of :attr:`RunResult.time_domain`.
TIME_DOMAINS = ("simulated", "wall")


class ProcStats:
    """Mutable statistics for one simulated processor.

    Attributes
    ----------
    rank:
        processor id.
    clock:
        current local time, seconds.
    phase:
        current phase label; clock advances are attributed to it.
    phase_times:
        seconds of clock advance per phase label.
    local_ops:
        total units of local computation charged.
    sends / recvs:
        point-to-point message counts.
    words_sent / words_received:
        point-to-point traffic in words.
    ctrl_ops:
        number of collective (control-network) operations joined.
    idle_time:
        seconds spent waiting in receives and collectives past the point
        where this rank was ready.  Included in ``clock`` and in
        ``phase_times`` (a wall clock cannot tell waiting from working) but
        tracked separately for load-balance diagnostics.
    """

    __slots__ = (
        "rank",
        "clock",
        "phase",
        "phase_times",
        "local_ops",
        "sends",
        "recvs",
        "words_sent",
        "words_received",
        "ctrl_ops",
        "idle_time",
        "phase_ops",
    )

    def __init__(self, rank: int):
        self.rank = rank
        self.clock = 0.0
        self.phase = DEFAULT_PHASE
        self.phase_times: dict[str, float] = defaultdict(float)
        self.phase_ops: dict[str, float] = defaultdict(float)
        self.local_ops = 0.0
        self.sends = 0
        self.recvs = 0
        self.words_sent = 0
        self.words_received = 0
        self.ctrl_ops = 0
        self.idle_time = 0.0

    # ------------------------------------------------------------- mutation
    def set_phase(self, name: str) -> None:
        if not name:
            raise PhaseError(f"rank {self.rank}: empty phase name")
        self.phase = name

    def advance(self, seconds: float) -> None:
        """Advance the clock, attributing the time to the current phase."""
        if seconds < 0:
            raise PhaseError(f"rank {self.rank}: negative time advance {seconds}")
        self.clock += seconds
        self.phase_times[self.phase] += seconds

    def advance_to(self, when: float) -> None:
        """Advance the clock to absolute time ``when``, counting the gap as idle.

        No-op if ``when`` is in the past (the message was already waiting).
        """
        if when > self.clock:
            gap = when - self.clock
            self.idle_time += gap
            self.advance(gap)

    def charge_ops(self, ops: float) -> None:
        self.local_ops += ops
        self.phase_ops[self.phase] += ops

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "clock": self.clock,
            "local_ops": self.local_ops,
            "sends": self.sends,
            "recvs": self.recvs,
            "words_sent": self.words_sent,
            "words_received": self.words_received,
            "ctrl_ops": self.ctrl_ops,
            "idle_time": self.idle_time,
            "phase_times": dict(self.phase_times),
            "phase_ops": dict(self.phase_ops),
        }

    def __repr__(self) -> str:
        return (
            f"ProcStats(rank={self.rank}, clock={self.clock:.6f}, "
            f"ops={self.local_ops:.0f}, sent={self.words_sent}w/{self.sends}m)"
        )


@dataclass
class RunResult:
    """Outcome of one SPMD run.

    Attributes
    ----------
    results:
        per-rank return values of the program generators.
    stats:
        per-rank :class:`ProcStats`.
    time_domain:
        what kind of clock the per-rank times are measured on:
        ``"simulated"`` (the spec's two-level cost model — the simulator
        backend) or ``"wall"`` (real host seconds — the multiprocessing
        backend).  Aggregation helpers refuse to combine runs from
        different domains (:class:`~repro.machine.errors.TimeDomainError`).
    """

    results: list[Any]
    stats: list[ProcStats]
    time_domain: str = "simulated"

    def __post_init__(self) -> None:
        if self.time_domain not in TIME_DOMAINS:
            raise ValueError(
                f"time_domain must be one of {TIME_DOMAINS}, "
                f"got {self.time_domain!r}"
            )

    # -------------------------------------------------------------- timing
    @property
    def nprocs(self) -> int:
        return len(self.stats)

    @property
    def elapsed(self) -> float:
        """Simulated wall-clock time of the whole run (max final clock)."""
        return max((s.clock for s in self.stats), default=0.0)

    def phase_time(self, prefix: str) -> float:
        """Wall time of a phase: max over ranks of the per-rank phase total.

        ``prefix`` selects every phase equal to it or nested below it
        (``"a.b"`` matches ``"a.b"`` and ``"a.b.c"`` but not ``"a.bc"``).
        A prefix that matches no recorded phase raises
        :class:`~repro.machine.errors.PhaseError` naming the known
        prefixes — silently returning 0.0 hid typos like
        ``phase_time("pack.rank")``.
        """
        best = 0.0
        matched = False
        for s in self.stats:
            total = 0.0
            for name, t in s.phase_times.items():
                if name == prefix or name.startswith(prefix + "."):
                    total += t
                    matched = True
            best = max(best, total)
        if not matched:
            known = sorted(
                {p for name in self.phase_names()
                 for p in _prefixes_of(name)}
            )
            raise PhaseError(
                f"unknown phase prefix {prefix!r}; known prefixes: "
                f"{', '.join(known) if known else '(none recorded)'}"
            )
        return best

    def phase_names(self) -> list[str]:
        names: set[str] = set()
        for s in self.stats:
            names.update(s.phase_times)
        return sorted(names)

    def phase_breakdown(self) -> dict[str, float]:
        """Wall time for every leaf phase name observed in the run."""
        return {name: self.phase_time(name) for name in self.phase_names()}

    # ------------------------------------------------------------- traffic
    @property
    def total_words(self) -> int:
        return sum(s.words_sent for s in self.stats)

    @property
    def total_messages(self) -> int:
        return sum(s.sends for s in self.stats)

    @property
    def total_ops(self) -> float:
        return sum(s.local_ops for s in self.stats)

    def max_words_sent(self) -> int:
        return max((s.words_sent for s in self.stats), default=0)

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-rank local op counts (1.0 = perfect)."""
        ops = [s.local_ops for s in self.stats]
        mean = sum(ops) / len(ops) if ops else 0.0
        if mean == 0:
            return 1.0
        return max(ops) / mean

    # ------------------------------------------------------------ reporting
    def summary(self) -> str:
        lines = [
            f"ranks={self.nprocs} elapsed={self.elapsed * 1e3:.3f} ms "
            f"msgs={self.total_messages} words={self.total_words} "
            f"ops={self.total_ops:.0f}",
        ]
        for name, t in sorted(self.phase_breakdown().items()):
            lines.append(f"  {name:<40s} {t * 1e3:10.3f} ms")
        return "\n".join(lines)


def _prefixes_of(name: str) -> list[str]:
    """Every dot-separated prefix of a phase name, including itself."""
    parts = name.split(".")
    return [".".join(parts[: i + 1]) for i in range(len(parts))]


def same_time_domain(runs: Iterable[RunResult]) -> str:
    """The shared time domain of several runs.

    Raises :class:`~repro.machine.errors.TimeDomainError` when the runs
    disagree — adding a simulated CM-5 clock to a measured wall clock is
    always a bug, never a number.
    """
    domains = {run.time_domain for run in runs}
    if not domains:
        return "simulated"
    if len(domains) > 1:
        raise TimeDomainError(domains)
    return domains.pop()


def stats_from_snapshot(snapshot: Mapping[str, Any]) -> ProcStats:
    """Rebuild a :class:`ProcStats` from a :meth:`ProcStats.snapshot` dict.

    Used by execution backends that run ranks in other processes and ship
    their statistics home as plain dicts.
    """
    st = ProcStats(int(snapshot["rank"]))
    st.clock = float(snapshot.get("clock", 0.0))
    st.local_ops = float(snapshot.get("local_ops", 0.0))
    st.sends = int(snapshot.get("sends", 0))
    st.recvs = int(snapshot.get("recvs", 0))
    st.words_sent = int(snapshot.get("words_sent", 0))
    st.words_received = int(snapshot.get("words_received", 0))
    st.ctrl_ops = int(snapshot.get("ctrl_ops", 0))
    st.idle_time = float(snapshot.get("idle_time", 0.0))
    for name, t in dict(snapshot.get("phase_times", {})).items():
        st.phase_times[name] = float(t)
    for name, ops in dict(snapshot.get("phase_ops", {})).items():
        st.phase_ops[name] = float(ops)
    return st


def merge_phase_tables(tables: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Element-wise max of several phase tables (utility for reports)."""
    out: dict[str, float] = defaultdict(float)
    for table in tables:
        for name, t in table.items():
            out[name] = max(out[name], t)
    return dict(out)
