"""Many-to-many personalized communication.

The redistribution stage of PACK/UNPACK requires every processor to send a
different message to an arbitrary subset of processors — *many-to-many
personalized communication*.  The paper (Section 7) schedules it with the
**linear permutation** algorithm of Ranka/Wang/Fox [9]: at step
``k = 1 .. P-1`` processor ``i`` sends to ``(i + k) mod P`` and receives
from ``(i - k) mod P``.  On a congestion-free crossbar this is both simple
and contention-free; under the two-level model its cost for maximum
per-processor out-volume ``m`` is ``(P-1) * tau + mu * m_total``.

Two schedule variants are provided for ablation:

``linear``
    the paper's schedule.  Steps with an empty message are skipped entirely
    (no start-up charged), mirroring an active-message implementation where
    silence is free.  Receivers know how many messages to expect because a
    message-count exchange precedes the data exchange (the count exchange is
    itself a linear permutation of single-word messages and is charged).
``naive``
    all (P-1) potential partners are contacted every step even when the
    message is empty; isolates the benefit of skipping.
``direct``
    every processor walks destinations in ascending rank order (0, 1,
    ...), so at step 0 *all* processors target rank 0, then rank 1, and
    so on.  Under the paper's contention-free model this costs the same
    as naive; with receiver-port contention (``spec.rx_port``) it
    hot-spots every destination in turn and serializes — the failure mode
    the linear permutation exists to avoid [9].

Self-messages bypass the network (the paper notes local copies were not
performed at all in their implementation); :func:`exchange` honours that and
optionally charges a memcpy via ``self_copy_charge``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Mapping

from .context import Context, payload_words
from .ops import CollectiveOp

__all__ = ["exchange", "exchange_counts", "SCHEDULES"]

SCHEDULES = ("linear", "naive", "direct")

#: Tag block reserved for m2m traffic so it cannot collide with collectives.
_COUNT_TAG = 901
_DATA_TAG = 902


def exchange_counts(
    ctx: Context, counts: Mapping[int, int], tag: int = _COUNT_TAG
) -> Generator[Any, Any, dict[int, int]]:
    """All-to-all of per-destination word counts (communication detection).

    Every processor learns, for each source, how many words that source
    will send it in the upcoming data exchange (0 meaning "no message"),
    so the data exchange can skip empty messages safely.

    On machines with a combining control network (the CM-5) the counts
    ride one hardware reduction of a length-P vector — essentially free
    compared to ``P-1`` point-to-point start-ups.  Otherwise a linear
    permutation of single-word messages is used.

    Returns a dict ``source -> words`` with only non-zero entries.
    """
    P = ctx.size
    incoming: dict[int, int] = {}
    ctx.count("m2m.count_exchanges")

    if ctx.spec.has_control_network:
        # One combining operation: member contributions are routed so each
        # rank receives the column of counts addressed to it.
        def _combine(payloads: dict) -> tuple[dict, int]:
            # Invert sender -> {dest: words} into dest -> {sender: words};
            # walking the sparse outgoing maps is O(P + messages), not the
            # O(P^2) of probing every (sender, dest) pair.
            results: dict = {r: {} for r in payloads}
            for s, c in payloads.items():
                for r, w in c.items():
                    if r != s and int(w):
                        results[r][s] = int(w)
            return results, P

        got = yield CollectiveOp(
            group=tuple(range(P)),
            kind="m2m-counts",
            payload={d: int(w) for d, w in counts.items()},
            key=tag,
            combine=_combine,
        )
        incoming.update(got)
    else:
        for k in range(1, P):
            dest = (ctx.rank + k) % P
            src = (ctx.rank - k) % P
            ctx.send(dest, int(counts.get(dest, 0)), words=1, tag=tag)
            msg = yield ctx.recv(source=src, tag=tag)
            if msg.payload:
                incoming[src] = int(msg.payload)
    self_words = int(counts.get(ctx.rank, 0))
    if self_words:
        incoming[ctx.rank] = self_words
    return incoming


def exchange(
    ctx: Context,
    outgoing: Mapping[int, Any],
    words: Mapping[int, int] | None = None,
    schedule: str = "linear",
    self_copy_charge: bool = False,
    tag: int = _DATA_TAG,
    announce: bool = True,
    reliability=None,
) -> Generator[Any, Any, dict[int, Any]]:
    """Perform one many-to-many personalized exchange.

    Parameters
    ----------
    ctx:
        the rank's machine context.
    outgoing:
        ``dest -> payload``; destinations absent from the map receive
        nothing.  A self-entry is delivered locally without network cost.
    words:
        optional ``dest -> words`` overriding automatic payload sizing.
    schedule:
        ``"linear"`` (skip empty steps, after a count pre-exchange) or
        ``"naive"`` (contact every partner every step).
    self_copy_charge:
        charge a per-word local copy for the self-message (ablation knob).
    announce:
        for the linear schedule, whether to run the count pre-exchange.
        Callers that already know the incoming pattern (e.g. because a
        previous exchange announced it) may skip it by passing a complete
        ``outgoing`` map and ``announce=False`` — then empty steps still
        send zero-word headers so receivers can terminate.
    reliability:
        ``None``/``False`` (default) uses the machine's native at-most-once
        sends; a :class:`~repro.faults.reliable.ReliabilityConfig` (or
        ``True`` for defaults) routes the whole round through the
        reliable transport (:meth:`ReliableEndpoint.exchange
        <repro.faults.reliable.ReliableEndpoint.exchange>`), which
        survives an injected :class:`~repro.faults.plan.FaultPlan`
        dropping / duplicating / corrupting messages.  The reliable path
        keeps the count pre-exchange (on the control network when the
        machine has one, else itself made reliable) and then fires all
        data packets pipelined; ``schedule`` does not apply to it.

    Returns
    -------
    dict ``source -> payload`` of everything received (self included).
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown m2m schedule {schedule!r}; pick from {SCHEDULES}")
    P = ctx.size
    sizes = {
        d: (words[d] if words is not None and d in words else payload_words(p))
        for d, p in outgoing.items()
    }
    received: dict[int, Any] = {}

    if reliability is not None and reliability is not False:
        from ..faults.reliable import ReliabilityConfig, ReliableEndpoint

        cfg = ReliabilityConfig.coerce(reliability)
        ctx.count("m2m.reliable_exchanges")
        if ctx.rank in outgoing:
            ctx.local_copy(sizes[ctx.rank], charge=self_copy_charge)
            received[ctx.rank] = outgoing[ctx.rank]
        endpoint = ReliableEndpoint.of(ctx, cfg)
        if ctx.spec.has_control_network:
            # The CM-5 control network is engineered reliable (and the
            # fault model never touches it), so counts ride it as usual.
            incoming_sizes = yield from exchange_counts(
                ctx, {d: s for d, s in sizes.items() if d != ctx.rank}
            )
            incoming_sizes.pop(ctx.rank, None)
        else:
            # No control network: the count round itself crosses the
            # faulty data network, so make it reliable too.  Every rank
            # tells every other rank its outgoing volume (0 = nothing).
            counts_out = {
                d: int(sizes.get(d, 0)) for d in range(P) if d != ctx.rank
            }
            got_counts = yield from endpoint.exchange(
                counts_out, {d: 1 for d in counts_out}, expected=range(P)
            )
            incoming_sizes = {s: int(c) for s, c in got_counts.items() if int(c)}
        data_out = {
            d: p
            for d, p in outgoing.items()
            if d != ctx.rank and sizes.get(d, 0) > 0
        }
        got = yield from endpoint.exchange(data_out, sizes, expected=incoming_sizes)
        received.update(got)
        return received

    if ctx.metrics is not None:
        # Exchange structure: how many partners each rank actually sends
        # to (the schedule's effective fan-out) and the data volume it
        # contributes, per exchange.
        ctx.count("m2m.exchanges")
        ctx.count(f"m2m.schedule.{schedule}")
        fanout = sum(1 for d, s in sizes.items() if d != ctx.rank and s > 0)
        ctx.observe("m2m.fanout", fanout)
        ctx.observe(
            "m2m.words_out", sum(s for d, s in sizes.items() if d != ctx.rank)
        )

    # Real-process fast path: the mp driver executes ops imperatively, so
    # the announced linear schedule lowers to the aggregated native
    # alltoallv — one counts collective, bulk ring writes fired in the
    # same linear-permutation order, one arrival-order drain.  Same
    # messages, same payloads; only the host-side mechanics differ.
    native = getattr(ctx, "alltoallv_native", None)
    if (native is not None and schedule == "linear" and announce
            and ctx.spec.has_control_network):
        return native(outgoing, sizes, tag, _COUNT_TAG,
                      self_copy_charge=self_copy_charge)

    if ctx.rank in outgoing:
        ctx.local_copy(sizes[ctx.rank], charge=self_copy_charge)
        received[ctx.rank] = outgoing[ctx.rank]

    if schedule == "naive":
        for k in range(1, P):
            dest = (ctx.rank + k) % P
            src = (ctx.rank - k) % P
            payload = outgoing.get(dest)
            ctx.send(dest, payload, words=sizes.get(dest, 0), tag=tag)
            msg = yield ctx.recv(source=src, tag=tag)
            if msg.payload is not None:
                received[src] = msg.payload
        return received

    if schedule == "direct":
        # Ascending destination order: fire everything, then drain.  The
        # common hot-spot pattern the linear permutation avoids.
        for dest in range(P):
            if dest == ctx.rank:
                continue
            ctx.send(dest, outgoing.get(dest), words=sizes.get(dest, 0), tag=tag)
        for src in range(P):
            if src == ctx.rank:
                continue
            msg = yield ctx.recv(source=src, tag=tag)
            if msg.payload is not None:
                received[src] = msg.payload
        return received

    # Linear schedule with empty-step skipping.
    if announce:
        incoming_sizes = yield from exchange_counts(
            ctx, {d: s for d, s in sizes.items() if d != ctx.rank}
        )
    else:
        incoming_sizes = None

    # Fire every send in linear-permutation order, then drain the
    # receives.  This is the active-message style of the paper's CMMD
    # implementation: the permutation staggers the traffic so each
    # destination sees at most one in-flight message per time window
    # (what makes the schedule contention-free on real ports), and no
    # lockstep recv ever stalls the send stream.
    for k in range(1, P):
        dest = (ctx.rank + k) % P
        if incoming_sizes is None:
            # No-announce mode: full handshake so receivers can terminate.
            ctx.send(dest, outgoing.get(dest), words=sizes.get(dest, 0), tag=tag)
        elif dest in outgoing and sizes.get(dest, 0) > 0:
            ctx.send(dest, outgoing[dest], words=sizes[dest], tag=tag)
    for k in range(1, P):
        src = (ctx.rank - k) % P
        if incoming_sizes is None:
            msg = yield ctx.recv(source=src, tag=tag)
            if msg.payload is not None:
                received[src] = msg.payload
        elif src in incoming_sizes:
            msg = yield ctx.recv(source=src, tag=tag)
            received[src] = msg.payload
    return received
