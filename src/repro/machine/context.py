"""Per-rank execution context handed to SPMD programs.

A program is a generator function ``program(ctx, *args)``.  The context
exposes:

* non-blocking actions as plain method calls — :meth:`send`, :meth:`work`,
  :meth:`phase`, :meth:`elapse`;
* blocking actions as op constructors the program must ``yield`` —
  :meth:`recv`, :meth:`barrier` (see :mod:`repro.machine.ops`).

Example::

    def program(ctx, data):
        ctx.phase("exchange")
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        ctx.send(right, data, words=len(data))
        msg = yield ctx.recv(source=left)
        ctx.work(len(msg.payload))
        return msg.payload
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .errors import MessageError
from .ops import ANY, Barrier, CollectiveOp, Message, Recv
from .spec import MachineSpec
from .stats import ProcStats

__all__ = ["Context", "payload_words"]


def payload_words(payload: Any) -> int:
    """Best-effort size, in 4-byte words, of a message payload.

    Used when the sender does not pass ``words`` explicitly.  Numpy arrays
    count their elements (the paper counts message volume in array
    elements); sized containers count their length; scalars count 1.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, (bytes, bytearray)):
        return (len(payload) + 3) // 4
    if isinstance(payload, (list, tuple)):
        return sum(payload_words(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_words(v) for v in payload.values())
    return 1


class Context:
    """Handle through which one rank interacts with the simulated machine."""

    __slots__ = ("rank", "size", "spec", "stats", "scratch", "_engine")

    #: Domain of this context's clock: programs that replay recorded
    #: charges (the plan/execute split) consult it to decide whether
    #: simulated time must be restored or wall time simply passes.
    time_domain = "simulated"

    def __init__(self, rank: int, size: int, spec: MachineSpec, stats: ProcStats, engine):
        self.rank = rank
        self.size = size
        self.spec = spec
        self.stats = stats
        #: Per-rank, per-run scratch space for library layers that need
        #: state across calls (e.g. the reliable transport's sequence
        #: numbers); cleared implicitly because contexts are rebuilt by
        #: every :meth:`Machine.run`.
        self.scratch: dict = {}
        self._engine = engine

    # ------------------------------------------------------------ local ops
    def work(self, ops: float) -> None:
        """Charge ``ops`` units of local computation (``delta`` each)."""
        if ops < 0:
            raise MessageError(f"rank {self.rank}: negative work {ops}")
        if ops == 0:
            return
        self.stats.charge_ops(ops)
        seconds = self.spec.work_time(ops)
        scales = self._engine._work_scales
        if scales is not None:
            # Injected straggler: this node's CPU runs slower than modeled.
            seconds *= scales[self.rank]
        self.stats.advance(seconds)

    def elapse(self, seconds: float) -> None:
        """Advance this rank's clock by a raw duration (rarely needed)."""
        self.stats.advance(seconds)

    def phase(self, name: str) -> None:
        """Switch the phase label that subsequent time is attributed to."""
        self.stats.set_phase(name)
        tracer = getattr(self._engine, "tracer", None)
        if tracer is not None and tracer.capture_phases:
            tracer.record(self.stats.clock, self.rank, "phase", name=name)

    @property
    def clock(self) -> float:
        return self.stats.clock

    @property
    def current_phase(self) -> str:
        return self.stats.phase

    # ------------------------------------------------------------- metrics
    @property
    def metrics(self):
        """The machine's :class:`~repro.obs.registry.MetricsRegistry`, or
        ``None`` when the run is not instrumented."""
        return getattr(self._engine, "metrics", None)

    def count(self, name: str, n: float = 1) -> None:
        """Increment a counter metric; free no-op when metrics are absent.

        Algorithm code calls this at phase boundaries so instrumented runs
        accumulate structural quantities (exchange fan-outs, PRS fan-ins,
        selected-element counts) without any cost to plain runs.
        """
        m = self.metrics
        if m is not None:
            m.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram observation; free no-op when metrics are absent."""
        m = self.metrics
        if m is not None:
            m.observe(name, value)

    # ---------------------------------------------------------------- sends
    def send(
        self,
        dest: int,
        payload: Any,
        words: int | None = None,
        tag: int = 0,
        auto_ack: tuple[Any, int] | None = None,
    ) -> None:
        """Send a message; never blocks.

        The sender's clock advances by the full ``tau + mu * words`` (the
        two-level model charges the whole transfer to the communication
        step) and the message becomes available at the receiver at the
        sender's post-send clock.

        ``auto_ack=(seq, ack_words)`` requests a *transport-level*
        acknowledgment: for every copy of this message that actually
        arrives intact, the engine deposits an ``("ACK", seq)`` message
        of ``ack_words`` words back to the sender on the same tag — the
        receiving node's NIC acks, like an active-message or RDMA
        completion, so acks keep flowing even if the receiving program
        has moved on or finished.  Acks travel the faulty network like
        any other message.  This is the primitive under
        :mod:`repro.faults.reliable`; ordinary programs leave it unset.
        """
        if not (0 <= dest < self.size):
            raise MessageError(f"rank {self.rank}: bad destination {dest}")
        if words is None:
            words = payload_words(payload)
        if words < 0:
            raise MessageError(f"rank {self.rank}: negative message size {words}")
        hops = self.spec.hops_between(self.rank, dest)
        self.stats.advance(self.spec.message_time(words, hops))
        self.stats.sends += 1
        self.stats.words_sent += words
        self._engine._deliver(
            self.rank, dest, tag, payload, words, self.stats.clock,
            auto_ack=auto_ack,
        )

    def local_copy(self, words: int, charge: bool = False) -> None:
        """Model a self-addressed transfer.

        The paper notes ("in our implementation local copy was not performed
        when a processor needed to send a message to itself") that self
        messages bypass the network entirely.  By default this is free; with
        ``charge=True`` it costs one local op per word (memcpy), which the
        ablation benchmarks use.
        """
        if charge:
            self.work(words)

    # ------------------------------------------------------------- blocking
    def recv(self, source: Any = ANY, tag: Any = ANY) -> Recv:
        """Build a receive op: use as ``msg = yield ctx.recv(src)``."""
        if source is not ANY and not (0 <= source < self.size):
            raise MessageError(f"rank {self.rank}: bad source {source}")
        return Recv(source=source, tag=tag)

    def barrier(self, group: Sequence[int] | None = None, key: int = 0) -> CollectiveOp:
        """Build a barrier op over ``group`` (default: all ranks)."""
        if group is None:
            group = range(self.size)
        return Barrier(group, key=key)

    # ------------------------------------------------------------- helpers
    def words_of(self, payload: Any) -> int:
        return payload_words(payload)

    def __repr__(self) -> str:
        return f"Context(rank={self.rank}/{self.size}, spec={self.spec.name})"
