"""Machine cost parameters: the two-level model of Bae & Ranka, Section 2.

A coarse-grained distributed-memory machine is described by three constants:

``tau``
    message start-up cost in seconds.  Charged once per point-to-point
    message, on the sender.
``mu``
    per-word transfer time in seconds (the paper writes the transfer *rate*
    as ``1/mu``).  A message of ``m`` words costs ``tau + mu * m`` end to
    end; the model assumes no link contention and distance-independence, so
    the network behaves as a virtual crossbar.
``delta``
    cost of one unit of local computation in seconds.  All local-work
    charges in the library are expressed as operation counts multiplied by
    ``delta``.

The defaults below are calibrated to the 32 MHz SPARC nodes and data-network
characteristics of the Thinking Machines CM-5 on which the paper's
experiments ran: ~86 microseconds message start-up under CMMD, an effective
point-to-point bandwidth near 8 MB/s (0.5 microseconds per 4-byte word), and
roughly 10 million local scalar array operations per second once loop
overheads are included.  Absolute times produced by the simulator are *CM-5
scale*, which is what makes the reproduced tables land in the same
millisecond range as the paper's.

Machines with a hardware control network (the CM-5's scan/reduce network)
additionally expose ``ctrl_word`` (per-word cost of a control-network scan)
and ``ctrl_latency`` (fixed cost per control-network operation); see
footnote 2 of the paper: with a control network each of prefix-sum and
reduction-sum is O(M).
"""

from __future__ import annotations

from dataclasses import dataclass, replace, field

__all__ = ["MachineSpec", "LocalCostModel", "CM5", "ETHERNET_CLUSTER", "IDEAL"]


@dataclass(frozen=True)
class LocalCostModel:
    """Unit costs (in multiples of ``delta``) for classes of local work.

    The paper's Section 6.4 models local computation as a weighted sum of
    workload quantities (``L``, ``C``, ``E_i``, ``E_a``, ``Gs_i``,
    ``Gr_i``).  The weights depend on how the underlying operations touch
    memory; a sequential scan of a flat array is far cheaper per element on
    a cached RISC node than pointer-chasing through per-element bookkeeping
    records.  We therefore distinguish:

    ``seq``
        cost per element touched by a sequential, streaming scan
        (mask tests, slice scans, field-array copies).
    ``rand``
        cost per scattered memory operation (writing or reading one item of
        per-element bookkeeping, indexing a send buffer through an
        indirection, computing a destination processor for one element).
    ``vec``
        cost per element of a dense vector arithmetic step (the local
        prefix-sum and base-rank array manipulation of the intermediate and
        final ranking steps).
    ``seg``
        cost per message segment composed or decomposed in the compact
        message scheme (header handling).
    ``slice_overhead``
        fixed cost per *slice* visited by the compact schemes' second scan
        and send-vector construction (loop set-up, counter check, segment
        boundary bookkeeping).  This term is what makes the simple storage
        scheme win for cyclic distributions (slice size 1 means one
        overhead per element), exactly the paper's Table I observation.

    The defaults were calibrated once against the published Table I
    crossovers (see ``repro.analysis.crossover``) and are used unchanged by
    every experiment.
    """

    seq: float = 1.0
    rand: float = 1.5
    vec: float = 1.0
    seg: float = 3.0
    slice_overhead: float = 5.0

    def scaled(self, factor: float) -> "LocalCostModel":
        """Return a copy with every unit cost multiplied by ``factor``."""
        return LocalCostModel(
            seq=self.seq * factor,
            rand=self.rand * factor,
            vec=self.vec * factor,
            seg=self.seg * factor,
            slice_overhead=self.slice_overhead * factor,
        )


@dataclass(frozen=True)
class MachineSpec:
    """Immutable description of a coarse-grained parallel machine.

    Parameters
    ----------
    tau:
        message start-up time, seconds.
    mu:
        per-word transfer time, seconds/word.  The library counts message
        sizes in 4-byte words, matching the paper's element granularity.
    delta:
        time per unit of local computation, seconds.
    has_control_network:
        whether the machine offers a combining control network (the CM-5
        does).  When true, prefix-reduction-sum may run in ``ctrl_latency +
        ctrl_word * M`` time with no per-processor start-up.
    ctrl_word:
        per-word cost of a control-network scan, seconds/word.
    ctrl_latency:
        fixed latency of one control-network operation, seconds.
    local:
        the :class:`LocalCostModel` unit costs.
    name:
        human-readable machine name used in reports.
    topology:
        optional interconnect topology (see :mod:`repro.machine.topology`).
        ``None`` means the paper's virtual crossbar: distance-independent
        messages.  With a topology set, each message additionally pays
        ``tau_hop`` per routing hop (the wormhole per-hop set-up cost).
    tau_hop:
        per-hop cost, seconds.  Only meaningful with a topology.
    rx_port:
        model *node contention*: each processor owns one serial receive
        port, so concurrent messages to the same destination queue for
        ``mu * words`` apiece.  Off by default (the paper's Section 2
        assumes no node contention) — turning it on shows why the linear
        permutation schedule of [9] exists: schedules that hot-spot a
        receiver serialize on its port.  Uncontended messages cost exactly
        what they cost with the flag off.
    """

    tau: float = 86e-6
    mu: float = 0.5e-6
    delta: float = 0.1e-6
    has_control_network: bool = True
    ctrl_word: float = 2.0e-6
    ctrl_latency: float = 30e-6
    local: LocalCostModel = field(default_factory=LocalCostModel)
    name: str = "cm5"
    topology: object = None
    tau_hop: float = 0.0
    rx_port: bool = False

    def __post_init__(self) -> None:
        if self.tau < 0 or self.mu < 0 or self.delta < 0:
            raise ValueError("machine cost constants must be non-negative")
        if self.ctrl_word < 0 or self.ctrl_latency < 0:
            raise ValueError("control network costs must be non-negative")
        if self.tau_hop < 0:
            raise ValueError("tau_hop must be non-negative")

    # ---------------------------------------------------------------- costs
    def message_time(self, words: int, hops: int = 0) -> float:
        """End-to-end time of one message of ``words`` 4-byte words
        travelling ``hops`` network hops (0 under the crossbar model)."""
        if words < 0:
            raise ValueError(f"negative message size: {words}")
        return self.tau + self.tau_hop * hops + self.mu * words

    def hops_between(self, src: int, dst: int) -> int:
        """Routing distance under the configured topology (0 without one)."""
        if self.topology is None:
            return 0
        return self.topology.hops(src, dst)

    def work_time(self, ops: float) -> float:
        """Time of ``ops`` units of local computation."""
        if ops < 0:
            raise ValueError(f"negative op count: {ops}")
        return self.delta * ops

    def ctrl_time(self, words: int) -> float:
        """Time of one control-network scan/reduce over ``words`` words."""
        if not self.has_control_network:
            raise ValueError(f"{self.name} has no control network")
        return self.ctrl_latency + self.ctrl_word * words

    # ------------------------------------------------------------- variants
    def with_(self, **kw) -> "MachineSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)

    def without_control_network(self) -> "MachineSpec":
        return self.with_(has_control_network=False)

    def with_topology(self, topology, tau_hop: float = 5e-6) -> "MachineSpec":
        """Attach an interconnect topology and a per-hop wormhole cost.

        The default ``tau_hop`` of 5 us is a wormhole-era per-hop set-up
        cost, small relative to the 86 us start-up — the regime in which
        the paper claims mesh/hypercube portability.
        """
        return self.with_(topology=topology, tau_hop=tau_hop)


#: The CM-5 configuration used throughout the paper's Section 7.
CM5 = MachineSpec()

#: A commodity-cluster profile: much higher start-up relative to bandwidth.
#: Useful for sensitivity studies — the paper's scheme rankings depend on
#: the tau/mu ratio and this profile stresses the start-up-bound regime.
ETHERNET_CLUSTER = MachineSpec(
    tau=600e-6,
    mu=0.4e-6,
    delta=0.02e-6,
    has_control_network=False,
    name="ethernet-cluster",
)

#: A zero-latency machine; isolates pure data-volume effects in ablations.
IDEAL = MachineSpec(
    tau=0.0,
    mu=0.1e-6,
    delta=0.05e-6,
    has_control_network=True,
    ctrl_word=0.1e-6,
    ctrl_latency=0.0,
    name="ideal",
)
