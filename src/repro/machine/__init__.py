"""Simulated coarse-grained distributed-memory parallel machine.

This package implements the machine model of Section 2 of the paper: a set
of processors with private memories joined by a virtual crossbar, where a
message of ``m`` words costs ``tau + mu * m``, a unit of local computation
costs ``delta``, and (optionally, as on the CM-5) a hardware control network
performs combining scans/reductions in time linear in the vector length.

Programs are written SPMD-style as generator functions; see
:mod:`repro.machine.context` for the programming model and
:mod:`repro.machine.engine` for scheduling and clock semantics.

Observability: attach a :class:`Tracer` (event stream) and/or a
:class:`repro.obs.MetricsRegistry` (counters/histograms) to a
:class:`Machine`; both are free when absent.  Export and reporting live
in :mod:`repro.obs` — see ``docs/observability.md``.
"""

from .context import Context, payload_words
from .engine import Machine
from .errors import (
    CollectiveMismatchError,
    DeadlockError,
    MachineError,
    MessageError,
    PhaseError,
    ProgramError,
    RankFailureError,
    ReliabilityError,
    WatchdogError,
)
from .m2m import SCHEDULES, exchange, exchange_counts
from .ops import ANY, TIMEOUT, Barrier, CollectiveOp, Message, Recv
from .spec import CM5, ETHERNET_CLUSTER, IDEAL, LocalCostModel, MachineSpec
from .stats import DEFAULT_PHASE, ProcStats, RunResult
from .topology import Crossbar, Hypercube, Mesh2D, Ring, Topology, make_topology
from .trace import TraceEvent, Tracer

__all__ = [
    "ANY",
    "Barrier",
    "CM5",
    "Crossbar",
    "Hypercube",
    "Mesh2D",
    "Ring",
    "Topology",
    "TraceEvent",
    "Tracer",
    "make_topology",
    "CollectiveMismatchError",
    "CollectiveOp",
    "Context",
    "DEFAULT_PHASE",
    "DeadlockError",
    "ETHERNET_CLUSTER",
    "IDEAL",
    "LocalCostModel",
    "Machine",
    "MachineError",
    "MachineSpec",
    "Message",
    "MessageError",
    "PhaseError",
    "ProcStats",
    "ProgramError",
    "RankFailureError",
    "Recv",
    "ReliabilityError",
    "RunResult",
    "SCHEDULES",
    "TIMEOUT",
    "WatchdogError",
    "exchange",
    "exchange_counts",
    "payload_words",
]
