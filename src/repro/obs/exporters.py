"""Flat exports of a metrics snapshot: JSON and CSV.

The JSON form is the snapshot dict verbatim (stable keys, sorted); the CSV
form is long/tidy — one row per scalar quantity, histograms exploded into
their buckets — so spreadsheet tools and pandas both ingest it directly::

    metric,field,value
    machine.message_words,count,42
    machine.message_words,bucket_le_16,30
    machine.sends,value,42
"""

from __future__ import annotations

import csv
import json
from typing import Any, Mapping

__all__ = [
    "snapshot_rows",
    "write_metrics",
    "write_metrics_json",
    "write_metrics_csv",
]


def _snapshot_of(metrics) -> Mapping[str, Any]:
    """Accept either a registry or an already-taken snapshot dict."""
    snap = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    if not isinstance(snap, Mapping):
        raise TypeError(f"expected MetricsRegistry or snapshot dict, got {type(metrics)}")
    return snap


def snapshot_rows(metrics) -> list[tuple[str, str, Any]]:
    """Flatten a snapshot into ``(metric, field, value)`` rows."""
    rows: list[tuple[str, str, Any]] = []
    for name, entry in sorted(_snapshot_of(metrics).items()):
        if entry["type"] in ("counter", "gauge"):
            rows.append((name, "value", entry["value"]))
            continue
        for fld in ("count", "sum", "min", "max", "mean"):
            rows.append((name, fld, entry[fld]))
        for bucket, count in entry["buckets"].items():
            rows.append((name, f"bucket_{bucket}", count))
    return rows


def write_metrics_json(path, metrics, extra: Mapping[str, Any] | None = None) -> None:
    """Write ``{"metrics": snapshot, **extra}`` to ``path``."""
    doc: dict[str, Any] = {"metrics": dict(_snapshot_of(metrics))}
    if extra:
        doc.update(extra)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_metrics_csv(path, metrics) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(("metric", "field", "value"))
        writer.writerows(snapshot_rows(metrics))


def write_metrics(path, metrics) -> None:
    """Dispatch on extension: ``.csv`` writes CSV, anything else JSON."""
    if str(path).endswith(".csv"):
        write_metrics_csv(path, metrics)
    else:
        write_metrics_json(path, metrics)
