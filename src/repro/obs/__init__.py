"""Observability for the simulated machine: metrics, traces, reports.

The paper's whole argument is cost accounting — ranking vs. redistribution
time, PRS step structure, per-phase message volumes.  This package makes
those quantities first-class:

* :mod:`repro.obs.registry` — counters / gauges / fixed-bucket histograms
  (:class:`MetricsRegistry`), attachable to a
  :class:`~repro.machine.engine.Machine` alongside the tracer and
  populated by the engine's send/receive/collective/contention paths and
  the core PACK/UNPACK phase boundaries.  Zero overhead when absent.
* :mod:`repro.obs.chrome_trace` — export a traced run as Chrome
  ``trace_event`` JSON (one thread per rank, phase slices, message flow
  arrows); open in ``chrome://tracing`` or https://ui.perfetto.dev.
* :mod:`repro.obs.profiler` — :class:`PhaseProfiler` (bundles both
  observers) and :class:`RunReport` (the structured per-run summary the
  host API returns).
* :mod:`repro.obs.exporters` — flat JSON/CSV metric snapshots.
* :mod:`repro.obs.runtime` — cross-rank *runtime* profiling for the
  backend seam: :class:`RuntimeProfiler` / :class:`RunProfile` merge
  per-rank event lanes into one wall-clock-aligned Chrome trace, a P×P
  communication matrix and a phase-attribution table, in the backend's
  own time domain (``"simulated"`` vs ``"wall"`` profiles refuse to be
  compared — :class:`~repro.machine.stats.TimeDomainError`).

CLI entry points: ``python -m repro trace``, ``python -m repro metrics``
and ``python -m repro profile``; see ``docs/observability.md``.
"""

from ..hpf.caches import (
    clear_layout_caches,
    layout_cache_stats,
    publish_layout_cache_stats,
)
from .chrome_trace import (
    build_chrome_trace,
    trace_metadata,
    validate_chrome_trace,
    write_chrome_trace,
)
from .exporters import (
    snapshot_rows,
    write_metrics,
    write_metrics_csv,
    write_metrics_json,
)
from .profiler import PhaseProfiler, RunReport, build_run_report
from .registry import (
    DEFAULT_TIME_BUCKETS,
    DEFAULT_WORD_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_global_metrics,
    disable_global_metrics,
    enable_global_metrics,
)
from .runtime import (
    RUNTIME_PHASES,
    RankLane,
    RunProfile,
    RuntimeProfiler,
    build_sim_profile,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_WORD_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "RUNTIME_PHASES",
    "RankLane",
    "RunProfile",
    "RunReport",
    "RuntimeProfiler",
    "build_chrome_trace",
    "build_run_report",
    "build_sim_profile",
    "clear_layout_caches",
    "current_global_metrics",
    "disable_global_metrics",
    "enable_global_metrics",
    "layout_cache_stats",
    "publish_layout_cache_stats",
    "snapshot_rows",
    "trace_metadata",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
    "write_metrics_csv",
    "write_metrics_json",
]
