"""Cross-rank runtime profiling: where does the *host's* time go?

The PR-1 observability layer (:mod:`repro.obs.profiler`) sees simulated
time inside the single-process engine.  This module profiles the
*execution backends* themselves — the quantity ``BENCH_runtime.json``
shows exploding on the process-per-rank backend (fork cost, pickle
volume, queue wait, shm traffic) and that every MpBackend performance PR
is judged against.

The pieces:

* :class:`RuntimeProfiler` — the handle you pass as ``profile=`` to
  :func:`repro.pack` / :func:`repro.unpack` / :func:`repro.ranking` (or
  directly to ``Backend.run_spmd``).  After the run it holds a
  :class:`RunProfile`.
* :class:`RunProfile` — the merged, wall-clock-aligned outcome: one
  span lane per rank plus a gang lane (fork/reap), a ``P x P``
  communication matrix (messages and bytes), and a phase-attribution
  table answering "what fraction of host wall is fork / pickle /
  queue-wait / compute".
* :func:`build_sim_profile` — the simulator-side adapter: the same
  :class:`RunProfile` shape built from engine statistics and the tracer,
  so profiles are comparable across backends.  Comparable, never
  mixable: a profile carries its ``time_domain`` and
  :meth:`RunProfile.assert_comparable` raises
  :class:`~repro.machine.errors.TimeDomainError` on a cross-domain
  comparison, exactly like the run aggregation helpers.

Under the multiprocessing backend each rank records phase spans into a
lock-free per-rank ring buffer living in the run's shared-memory arena
(single writer per rank, read by the parent after the gang finishes —
see ``repro.runtime.mp``), so profiling never adds a lock or a pipe
message to the transport it is measuring.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = [
    "RUNTIME_PHASES",
    "RankLane",
    "RunProfile",
    "RuntimeProfiler",
    "build_sim_profile",
]

#: The named phases of the phase-attribution table on the process-per-rank
#: backend.  ``compute`` is the per-lane residual (time a rank spent
#: running program code between its instrumented transport operations), so
#: the attribution always sums to the host wall by construction.
RUNTIME_PHASES = (
    "fork",        # process spawn: gang start -> child interpreter running
    "shm",         # arena setup (parent) + per-rank view/argument build
    "pickle",      # serializing payloads out and deserializing them in (queue)
    "queue_send",  # posting messages onto mailbox queues (queue transport)
    "queue_wait",  # blocked on an empty mailbox queue (queue transport)
    "encode",      # wire codec encode/decode (ring transport)
    "ring_send",   # copying records/slab bytes into the shm ring (ring)
    "ring_wait",   # blocked polling an empty ring / doorbell (ring)
    "collective",  # the collective protocol, including waiting for peers
    "compute",     # residual: program code between transport operations
    "reap",        # result skew + joins + teardown + merge (parent)
)


@dataclass
class RankLane:
    """One rank's profile lane.

    ``spans`` are ``(phase, t0, t1)`` triples on the profile's common
    clock (seconds since the host call began, wall-aligned across ranks
    under the mp backend; simulated seconds under sim).  ``phase_seconds``
    is the per-phase total for this rank, including the derived
    ``compute`` residual.
    """

    rank: int
    t_start: float
    t_ready: float
    t_done: float
    spans: list[tuple[str, float, float]] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def span_gaps(self, min_gap: float = 1e-7) -> list[tuple[float, float]]:
        """Uninstrumented intervals in ``[t_ready, t_done]`` — compute time.

        Spans are recorded in time order by a single writer, so one sweep
        suffices.
        """
        gaps: list[tuple[float, float]] = []
        cursor = self.t_ready
        for _, t0, t1 in self.spans:
            if t0 < self.t_ready:
                continue  # fork/shm spans precede the lane body
            if t0 - cursor > min_gap:
                gaps.append((cursor, t0))
            cursor = max(cursor, t1)
        if self.t_done - cursor > min_gap:
            gaps.append((cursor, self.t_done))
        return gaps


@dataclass
class RunProfile:
    """Merged cross-rank profile of one backend run.

    Attributes
    ----------
    time_domain:
        ``"wall"`` (mp: every time below is real host seconds on one
        common clock) or ``"simulated"`` (sim: lane times and
        ``total_seconds`` are cost-model seconds; only
        ``host_wall_seconds`` is real).  Never mix the two —
        :meth:`assert_comparable` enforces it.
    total_seconds:
        the denominator of the attribution table: host wall of the whole
        call under mp, simulated elapsed under sim.
    host_wall_seconds:
        real wall seconds of the host-side call, whatever the domain (so
        a sim profile still records what the call cost the host).
    phase_seconds:
        the attribution table numerators.  Under mp these are the
        :data:`RUNTIME_PHASES`; under sim they are the algorithm's own
        phase labels (``pack.prs.dim0``, ...) plus an ``idle`` residual
        (end-of-run rank skew), so both domains telescope to
        ``total_seconds``.
    comm_msgs / comm_bytes:
        ``P x P`` matrices, rows = senders.  Under mp, bytes are the real
        wire volume — pickled payload bytes on the queue transport,
        encoded wire bytes (codec framing + raw array bytes) on the ring
        transport; under sim, payload words times four.
    transport:
        which mp message transport produced this profile (``"ring"`` or
        ``"queue"``); ``"n/a"`` under sim.
    """

    op: str
    backend: str
    time_domain: str
    nprocs: int
    total_seconds: float
    host_wall_seconds: float
    phase_seconds: dict[str, float]
    lanes: list[RankLane] = field(repr=False, default_factory=list)
    gang_spans: list[tuple[str, float, float]] = field(repr=False, default_factory=list)
    comm_msgs: list[list[int]] = field(repr=False, default_factory=list)
    comm_bytes: list[list[int]] = field(repr=False, default_factory=list)
    sends_per_rank: list[int] = field(repr=False, default_factory=list)
    recvs_per_rank: list[int] = field(repr=False, default_factory=list)
    recv_bytes_per_rank: list[int] = field(repr=False, default_factory=list)
    pickle_bytes_per_rank: list[int] = field(repr=False, default_factory=list)
    collectives_per_rank: list[int] = field(repr=False, default_factory=list)
    dropped_events: int = 0
    spec: str = "?"
    transport: str = "n/a"

    # ----------------------------------------------------------- attribution
    def phase_table(self) -> dict[str, dict[str, float]]:
        """Per-phase seconds and fraction of ``total_seconds``, sorted by
        descending share."""
        total = self.total_seconds or 1.0
        rows = {
            name: {"seconds": s, "fraction": s / total}
            for name, s in self.phase_seconds.items()
        }
        return dict(sorted(rows.items(), key=lambda kv: -kv[1]["seconds"]))

    @property
    def attributed_fraction(self) -> float:
        """Fraction of ``total_seconds`` the attribution table explains."""
        if not self.total_seconds:
            return 1.0
        return sum(self.phase_seconds.values()) / self.total_seconds

    # ------------------------------------------------------------ comparison
    def assert_comparable(self, other: "RunProfile") -> None:
        """Refuse to compare profiles from different time domains.

        Same semantics as :func:`~repro.machine.stats.same_time_domain`:
        a CM-5 simulated clock and a host wall clock are unrelated
        scales, so a cross-domain comparison raises
        :class:`~repro.machine.errors.TimeDomainError` instead of
        producing a number.
        """
        if self.time_domain != other.time_domain:
            from ..machine.errors import TimeDomainError

            raise TimeDomainError([self.time_domain, other.time_domain])

    # ---------------------------------------------------------- comm matrix
    def matrix_dict(self) -> dict[str, Any]:
        """The communication matrices plus the per-rank endpoint totals
        needed to check conservation from the exported file alone."""
        return {
            "nprocs": self.nprocs,
            "time_domain": self.time_domain,
            "transport": self.transport,
            "byte_meaning": (
                "payload words x 4" if self.time_domain != "wall"
                else "encoded wire bytes" if self.transport == "ring"
                else "pickled payload bytes"
            ),
            "msgs": [list(row) for row in self.comm_msgs],
            "bytes": [list(row) for row in self.comm_bytes],
            "sends_per_rank": list(self.sends_per_rank),
            "recvs_per_rank": list(self.recvs_per_rank),
            "recv_bytes_per_rank": list(self.recv_bytes_per_rank),
        }

    def validate_conservation(self) -> None:
        """Check the comm matrix against the per-rank endpoint counts.

        Messages and bytes must be conserved: row ``r`` sums to what rank
        ``r`` reported sending, column ``r`` to what rank ``r`` reported
        receiving.  Raises ``ValueError`` naming the first violation.
        """
        n = self.nprocs
        for r in range(n):
            row = sum(self.comm_msgs[r])
            if row != self.sends_per_rank[r]:
                raise ValueError(
                    f"comm matrix row {r} sums to {row} messages but rank "
                    f"{r} recorded {self.sends_per_rank[r]} sends"
                )
            col = sum(self.comm_msgs[q][r] for q in range(n))
            if col != self.recvs_per_rank[r]:
                raise ValueError(
                    f"comm matrix column {r} sums to {col} messages but "
                    f"rank {r} recorded {self.recvs_per_rank[r]} receives"
                )
            if self.recv_bytes_per_rank:
                col_b = sum(self.comm_bytes[q][r] for q in range(n))
                if col_b != self.recv_bytes_per_rank[r]:
                    raise ValueError(
                        f"comm matrix column {r} sums to {col_b} bytes but "
                        f"rank {r} received {self.recv_bytes_per_rank[r]}"
                    )

    # ---------------------------------------------------------- chrome trace
    def to_chrome_trace(self, pid: int = 0) -> list[dict]:
        """``traceEvents`` with one lane per rank plus a gang lane.

        The gang lane (host-side fork/collect/reap spans) sorts above the
        rank lanes; per-rank compute residuals are emitted as explicit
        ``compute`` slices filling the gaps between instrumented spans.
        """
        us = 1e6
        gang_tid = self.nprocs
        events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"repro {self.backend} backend "
                             f"({self.time_domain} clock)"},
        }, {
            "name": "thread_name", "ph": "M", "pid": pid, "tid": gang_tid,
            "args": {"name": "gang (host)"},
        }, {
            "name": "thread_sort_index", "ph": "M", "pid": pid,
            "tid": gang_tid, "args": {"sort_index": -1},
        }]
        for lane in self.lanes:
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": lane.rank, "args": {"name": f"rank {lane.rank}"},
            })
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": pid,
                "tid": lane.rank, "args": {"sort_index": lane.rank},
            })
        for name, t0, t1 in self.gang_spans:
            events.append({
                "name": name, "cat": "gang", "ph": "X", "pid": pid,
                "tid": gang_tid, "ts": t0 * us,
                "dur": max(t1 - t0, 0.0) * us,
            })
        for lane in self.lanes:
            for name, t0, t1 in lane.spans:
                events.append({
                    "name": name, "cat": "runtime", "ph": "X", "pid": pid,
                    "tid": lane.rank, "ts": t0 * us,
                    "dur": max(t1 - t0, 0.0) * us,
                })
            if self.time_domain == "wall":
                for t0, t1 in lane.span_gaps():
                    events.append({
                        "name": "compute", "cat": "runtime", "ph": "X",
                        "pid": pid, "tid": lane.rank, "ts": t0 * us,
                        "dur": (t1 - t0) * us,
                    })
        return events

    def write_chrome_trace(self, path) -> int:
        """Export the merged per-rank trace; returns the event count."""
        from .chrome_trace import trace_metadata, validate_chrome_trace

        events = self.to_chrome_trace()
        validate_chrome_trace(events)
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": trace_metadata(self.time_domain, {
                "op": self.op,
                "backend": self.backend,
                "nprocs": self.nprocs,
                "host_wall_ms": self.host_wall_seconds * 1e3,
                "dropped_events": self.dropped_events,
            }),
        }
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return len(events)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "backend": self.backend,
            "spec": self.spec,
            "time_domain": self.time_domain,
            "transport": self.transport,
            "nprocs": self.nprocs,
            "total_seconds": self.total_seconds,
            "host_wall_seconds": self.host_wall_seconds,
            "attributed_fraction": self.attributed_fraction,
            "phase_table": self.phase_table(),
            "comm_matrix": self.matrix_dict(),
            "pickle_bytes_per_rank": list(self.pickle_bytes_per_rank),
            "collectives_per_rank": list(self.collectives_per_rank),
            "dropped_events": self.dropped_events,
            "gang_spans": [list(s) for s in self.gang_spans],
        }

    def to_json(self, path=None, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    # ------------------------------------------------------------- reporting
    def summary(self) -> str:
        unit = "host wall" if self.time_domain == "wall" else "simulated"
        via = f" transport={self.transport}" if self.transport != "n/a" else ""
        lines = [
            f"{self.op} on backend={self.backend}:{via} ranks={self.nprocs} "
            f"{unit} {self.total_seconds * 1e3:.3f} ms "
            f"(attributed {self.attributed_fraction * 100:.1f}%)",
        ]
        for name, row in self.phase_table().items():
            lines.append(
                f"  {name:<14s} {row['seconds'] * 1e3:10.3f} ms "
                f"{row['fraction'] * 100:6.1f}%"
            )
        total_msgs = sum(map(sum, self.comm_msgs))
        total_bytes = sum(map(sum, self.comm_bytes))
        wire = "encoded" if self.transport == "ring" else "pickled"
        lines.append(
            f"  comm: {total_msgs} messages, {total_bytes} bytes"
            + (f", {sum(self.pickle_bytes_per_rank)} {wire} payload bytes"
               if self.time_domain == "wall" else "")
        )
        return "\n".join(lines)


class RuntimeProfiler:
    """Request a cross-rank runtime profile from a backend run.

    Pass as ``profile=`` to :func:`repro.pack` / :func:`repro.unpack` /
    :func:`repro.ranking` (or to ``Backend.run_spmd``)::

        prof = RuntimeProfiler()
        repro.pack(a, m, grid=8, backend="mp", profile=prof)
        print(prof.profile.summary())
        prof.profile.write_chrome_trace("pack.mp.trace.json")

    ``ring_capacity`` bounds the per-rank span ring buffer under the mp
    backend; overflowing spans are dropped from the *trace* (counted in
    :attr:`RunProfile.dropped_events`) but still accumulated into the
    attribution table, which is kept exact separately.
    """

    def __init__(self, ring_capacity: int = 8192):
        if ring_capacity < 16:
            raise ValueError(f"ring_capacity must be >= 16, got {ring_capacity}")
        self.ring_capacity = ring_capacity
        self.profile: RunProfile | None = None

    def finish(self, op: str, spec: str = "?") -> RunProfile:
        """Label the backend-built profile with what ran (host API hook)."""
        if self.profile is None:
            raise ValueError("no profile recorded; run with profile= first")
        self.profile.op = op
        self.profile.spec = spec
        return self.profile

    def __repr__(self) -> str:
        state = "pending" if self.profile is None else self.profile.summary().splitlines()[0]
        return f"RuntimeProfiler({state})"


def build_sim_profile(
    run,
    tracer,
    host_wall: float,
    nprocs: int,
) -> RunProfile:
    """Adapt a simulator run to the :class:`RunProfile` shape.

    Lanes are the algorithm's own phase spans on the simulated clock
    (reconstructed from the tracer exactly like the Chrome exporter);
    the comm matrix comes from traced sends with bytes = words * 4.  The
    attribution table holds the per-phase *mean over ranks* plus an
    ``idle`` residual (end-of-run skew: ranks that finish before the
    slowest one).  Every simulated clock advance is attributed to the
    rank's current phase, so per-rank phase totals sum to that rank's
    final clock and the table telescopes exactly to ``run.elapsed``.
    """
    lanes: list[RankLane] = []
    for r in range(nprocs):
        st = run.stats[r]
        spans = [
            (e.detail["name"], e.time)
            for e in tracer.events
            if e.kind == "phase" and e.rank == r
        ]
        if not spans or spans[0][1] > 0:
            from ..machine.stats import DEFAULT_PHASE

            spans.insert(0, (DEFAULT_PHASE, 0.0))
        lane_spans = []
        for i, (name, t0) in enumerate(spans):
            t1 = spans[i + 1][1] if i + 1 < len(spans) else st.clock
            lane_spans.append((name, t0, t1))
        lanes.append(RankLane(
            rank=r, t_start=0.0, t_ready=0.0, t_done=st.clock,
            spans=lane_spans,
            phase_seconds=dict(st.phase_times),
        ))

    msgs = [[0] * nprocs for _ in range(nprocs)]
    nbytes = [[0] * nprocs for _ in range(nprocs)]
    for src, dst, words in tracer.message_pairs():
        msgs[src][dst] += 1
        nbytes[src][dst] += words * 4

    phase_seconds: dict[str, float] = {}
    for st in run.stats:
        for name, t in st.phase_times.items():
            phase_seconds[name] = phase_seconds.get(name, 0.0) + t / nprocs
    idle = run.elapsed - sum(phase_seconds.values())
    if idle > 0.0:
        phase_seconds["idle"] = idle
    return RunProfile(
        op="run",
        backend="sim",
        time_domain="simulated",
        nprocs=nprocs,
        total_seconds=run.elapsed,
        host_wall_seconds=host_wall,
        phase_seconds=phase_seconds,
        lanes=lanes,
        gang_spans=[],
        comm_msgs=msgs,
        comm_bytes=nbytes,
        sends_per_rank=[s.sends for s in run.stats],
        recvs_per_rank=[s.recvs for s in run.stats],
        recv_bytes_per_rank=[s.words_received * 4 for s in run.stats],
        pickle_bytes_per_rank=[0] * nprocs,
        collectives_per_rank=[s.ctrl_ops for s in run.stats],
    )
