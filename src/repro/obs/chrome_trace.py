"""Chrome ``trace_event`` export of a traced simulated run.

Turns a :class:`~repro.machine.trace.Tracer` event stream (plus,
optionally, the run's :class:`~repro.machine.stats.RunResult` for exact
end-of-run clocks) into the JSON format consumed by ``chrome://tracing``
and https://ui.perfetto.dev:

* one **thread per simulated rank** (thread-name metadata events);
* **phase slices** — complete events (``ph: "X"``) reconstructed from the
  phase-switch events: a rank's phase runs from the switch until its next
  switch, and its last phase until that rank's final clock.  Because every
  clock advance is attributed to the rank's current phase, the slice
  durations sum *exactly* to ``ProcStats.phase_times`` per rank (and so
  their per-rank maxima match ``RunResult.phase_time``);
* **flow events** (``ph: "s"`` / ``"f"``) binding every traced send to the
  matching receive — message arrows in the viewer;
* **instant events** for collectives.

Timestamps are microseconds, per the format — but a microsecond of
*simulated* CM-5 time and a microsecond of *wall* time are unrelated
scales, so every exported trace is stamped with its ``time_domain``
(process-name label + ``otherData`` metadata via :func:`trace_metadata`)
and the seconds→timestamp scale is chosen per domain from
:data:`_DOMAIN_SCALE`.  The exporter is pure: it reads the tracer and
stats, mutates nothing, and returns plain dicts.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = [
    "build_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "trace_metadata",
]

_US = 1e6  # seconds -> microseconds

#: Seconds→timestamp scale per time domain.  Both resolve to microseconds
#: (the trace_event format mandates µs timestamps), but the table keeps the
#: choice explicit and per-domain — and :func:`trace_metadata` records which
#: clock those microseconds belong to, so a wall trace can never be mistaken
#: for a simulated one.
_DOMAIN_SCALE = {"simulated": _US, "wall": _US}

#: Human description of each domain's clock, stamped into trace metadata.
_DOMAIN_CLOCK = {
    "simulated": "simulated machine seconds (two-level cost model)",
    "wall": "host wall seconds (CLOCK_MONOTONIC-aligned across ranks)",
}


def trace_metadata(time_domain: str, extra: dict | None = None) -> dict:
    """``otherData`` metadata stamping a trace with its time domain.

    Every exported trace carries ``time_domain``, the timestamp unit and a
    description of the underlying clock, so traces from the simulator and
    the real-process backend are never silently interchangeable.
    """
    if time_domain not in _DOMAIN_SCALE:
        from ..machine.stats import TIME_DOMAINS

        raise ValueError(
            f"time_domain must be one of {TIME_DOMAINS}, got {time_domain!r}"
        )
    meta = {
        "time_domain": time_domain,
        "timestamp_unit": f"{time_domain} microseconds",
        "clock": _DOMAIN_CLOCK[time_domain],
    }
    meta.update(extra or {})
    return meta

#: Required keys per event phase type, used by :func:`validate_chrome_trace`.
_REQUIRED = {
    "M": ("name", "ph", "pid", "tid"),
    "X": ("name", "ph", "pid", "tid", "ts", "dur"),
    "s": ("name", "ph", "pid", "tid", "ts", "id"),
    "f": ("name", "ph", "pid", "tid", "ts", "id"),
    "i": ("name", "ph", "pid", "tid", "ts"),
}


def build_chrome_trace(tracer, run=None, nprocs: int | None = None, pid: int = 0,
                       time_domain: str | None = None) -> list[dict]:
    """Build the ``traceEvents`` list for one traced run.

    Parameters
    ----------
    tracer:
        the :class:`~repro.machine.trace.Tracer` that observed the run.
    run:
        the run's :class:`~repro.machine.stats.RunResult`; when given, each
        rank's last phase slice ends at that rank's *own* final clock
        (exact), otherwise at the global last event time (approximate).
    nprocs:
        number of ranks; inferred from ``run`` when omitted.
    time_domain:
        the domain of the tracer's timestamps (``"simulated"`` /
        ``"wall"``); inferred from ``run`` when omitted, defaulting to
        ``"simulated"``.  Labels the process lane and picks the
        seconds→timestamp scale from :data:`_DOMAIN_SCALE`.
    """
    if nprocs is None:
        if run is None:
            raise ValueError("need nprocs or run to size the rank tracks")
        nprocs = run.nprocs
    if time_domain is None:
        time_domain = getattr(run, "time_domain", None) or "simulated"
    scale = _DOMAIN_SCALE[time_domain]
    machine = "simulated machine" if time_domain == "simulated" else "machine"
    events: list[dict] = [
        {
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"repro {machine} ({time_domain} clock)"},
        }
    ]
    for r in range(nprocs):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": r,
            "args": {"name": f"rank {r}"},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid, "tid": r,
            "args": {"sort_index": r},
        })

    t_last = max((e.time for e in tracer.events), default=0.0)

    # ------------------------------------------------------- phase slices
    for r in range(nprocs):
        spans = [
            (e.time, e.detail["name"])
            for e in tracer.events
            if e.kind == "phase" and e.rank == r
        ]
        end_of_run = run.stats[r].clock if run is not None else t_last
        if spans and spans[0][0] > 0:
            # Time before the first explicit phase switch is charged to the
            # default phase; give it a slice so the totals still add up.
            spans.insert(0, (0.0, _default_phase_name()))
        for i, (start, name) in enumerate(spans):
            end = spans[i + 1][0] if i + 1 < len(spans) else end_of_run
            events.append({
                "name": name, "cat": "phase", "ph": "X", "pid": pid, "tid": r,
                "ts": start * scale, "dur": max(end - start, 0.0) * scale,
            })

    # ------------------------------------------------------ message flows
    pending: dict[tuple, list] = {}
    for e in tracer.events:
        if e.kind == "send":
            key = (e.rank, e.detail["dest"], e.detail["tag"])
            pending.setdefault(key, []).append(e)
    flow_id = 0
    for e in tracer.events:
        if e.kind != "recv":
            continue
        queue = pending.get((e.detail["source"], e.rank, e.detail["tag"]))
        if not queue:
            continue
        s = queue.pop(0)
        flow_id += 1
        name = f"msg {s.detail['words']}w"
        events.append({
            "name": name, "cat": "msg", "ph": "s", "pid": pid,
            "tid": s.rank, "ts": s.time * scale, "id": flow_id,
        })
        events.append({
            "name": name, "cat": "msg", "ph": "f", "bp": "e", "pid": pid,
            "tid": e.rank, "ts": e.time * scale, "id": flow_id,
        })

    # -------------------------------------------------------- collectives
    for e in tracer.events:
        if e.kind == "collective":
            events.append({
                "name": e.detail.get("op", "collective"), "cat": "collective",
                "ph": "i", "s": "t", "pid": pid, "tid": e.rank,
                "ts": e.time * scale,
            })
    return events


def _default_phase_name() -> str:
    from ..machine.stats import DEFAULT_PHASE

    return DEFAULT_PHASE


def validate_chrome_trace(events: Iterable[dict]) -> int:
    """Sanity-check a ``traceEvents`` list; returns the event count.

    Raises ``ValueError`` on a malformed event.  Checks are structural
    (required keys per event type, non-negative timestamps/durations,
    flow-id pairing) — enough to catch exporter regressions and garbage
    files in CI without reimplementing the viewer.
    """
    open_flows: dict[Any, int] = {}
    n = 0
    for ev in events:
        n += 1
        ph = ev.get("ph")
        if ph not in _REQUIRED:
            raise ValueError(f"event {n}: unknown or missing ph {ph!r}")
        missing = [k for k in _REQUIRED[ph] if k not in ev]
        if missing:
            raise ValueError(f"event {n} (ph={ph}): missing keys {missing}")
        if "ts" in ev and ev["ts"] < 0:
            raise ValueError(f"event {n}: negative timestamp {ev['ts']}")
        if ph == "X" and ev["dur"] < 0:
            raise ValueError(f"event {n}: negative duration {ev['dur']}")
        if ph == "s":
            open_flows[ev["id"]] = open_flows.get(ev["id"], 0) + 1
        elif ph == "f":
            if open_flows.get(ev["id"], 0) <= 0:
                raise ValueError(f"event {n}: flow finish without start, id={ev['id']}")
            open_flows[ev["id"]] -= 1
    dangling = [fid for fid, c in open_flows.items() if c]
    if dangling:
        raise ValueError(f"unmatched flow starts: ids {dangling[:10]}")
    return n


def write_chrome_trace(path, tracer, run=None, nprocs: int | None = None,
                       metadata: dict | None = None,
                       time_domain: str | None = None) -> int:
    """Export to ``path`` as a Chrome trace JSON object; returns event count.

    The file holds ``{"traceEvents": [...], "displayTimeUnit": "ms",
    "otherData": {...}}`` — the object form, which viewers accept and
    which leaves room for run metadata.  ``otherData`` always carries the
    :func:`trace_metadata` time-domain stamp (domain inferred from ``run``
    when not given), so wall-clock and simulated traces are never
    interchangeable."""
    if time_domain is None:
        time_domain = getattr(run, "time_domain", None) or "simulated"
    events = build_chrome_trace(tracer, run=run, nprocs=nprocs,
                                time_domain=time_domain)
    validate_chrome_trace(events)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": trace_metadata(time_domain, metadata),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(events)
