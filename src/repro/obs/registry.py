"""Metrics primitives: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the simulator's quantitative event sink —
the numeric complement of :class:`~repro.machine.trace.Tracer`'s event
stream.  The engine populates it from the send/receive/collective/
contention paths, the core PACK/UNPACK programs from their phase
boundaries, and the many-to-many scheduler from its exchange structure.

Design constraints, in order:

1. **Zero overhead when absent.**  Every producer guards with
   ``if metrics is not None`` (or the :meth:`Context.count
   <repro.machine.context.Context>` helpers, which do the same), so a run
   without a registry executes exactly the seed code path.
2. **Deterministic.**  Metrics never read wall clocks; everything comes
   from simulated quantities, so two identical runs produce identical
   snapshots.
3. **Flat and exportable.**  A snapshot is a plain dict of plain values —
   directly JSON/CSV-serializable (see :mod:`repro.obs.exporters`).

Histograms use *fixed* bucket upper bounds chosen at registration (or by
name suffix for auto-created ones: ``*_seconds`` metrics get latency
buckets, everything else word-count buckets).  Cumulative-style counts
are not used; each bucket counts observations in ``(prev, bound]``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_WORD_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "enable_global_metrics",
    "disable_global_metrics",
    "current_global_metrics",
]

#: Default bucket bounds for size-like metrics (words, counts, fan-in).
DEFAULT_WORD_BUCKETS: tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536,
)

#: Default bucket bounds for duration metrics, in seconds (1us .. 10s).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value that may move either way."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last bound.
    ``counts`` therefore has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Iterable[float]):
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r}: needs at least one bucket")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds must be strictly "
                f"increasing, got {self.bounds}"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {
                **{f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)},
                "overflow": self.counts[-1],
            },
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, mean={self.mean:g})"
        )


def _default_bounds(name: str) -> tuple[float, ...]:
    return DEFAULT_TIME_BUCKETS if name.endswith("_seconds") else DEFAULT_WORD_BUCKETS


class MetricsRegistry:
    """Named metrics, created on first use and kept for the registry's life.

    The three accessor methods (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) create-or-return; a name registered as one kind
    cannot be reused as another (that is a programming error, reported
    eagerly).  The hot-path helpers :meth:`inc` / :meth:`observe` /
    :meth:`set` avoid touching metric objects at the call sites.

    A registry can be :meth:`disable`\\ d without detaching it: every
    hot-path helper then returns immediately on a single cached-flag
    check, and producers holding pre-bound metric handles (e.g. the
    engine's send/receive paths) are expected to guard on
    :attr:`enabled` themselves — so instrumented-but-muted runs cost one
    attribute load and a branch per event, not a dict lookup and an
    object update.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._enabled = True

    # ------------------------------------------------------------ on/off
    @property
    def enabled(self) -> bool:
        """Whether hot-path recording helpers do anything at all."""
        return self._enabled

    def disable(self) -> None:
        """Mute the registry: ``inc``/``observe``/``set`` become no-ops.

        Registration and inspection still work; already-recorded values
        are kept.  Re-enable with :meth:`enable`."""
        self._enabled = False

    def enable(self) -> None:
        self._enabled = True

    # ------------------------------------------------------------- accessors
    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets: Iterable[float] | None = None) -> Histogram:
        hist = self._get(
            name,
            Histogram,
            lambda: Histogram(name, buckets if buckets is not None else _default_bounds(name)),
        )
        if buckets is not None and hist.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{hist.bounds}, got {tuple(buckets)}"
            )
        return hist

    # ------------------------------------------------------------- hot path
    def inc(self, name: str, n: float = 1) -> None:
        if not self._enabled:
            return
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        self.histogram(name).observe(value)

    def set(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        self.gauge(name).set(value)

    # ------------------------------------------------------------ inspection
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def value(self, name: str) -> float:
        """Counter/gauge value (0.0 for an unknown name)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise ValueError(f"metric {name!r} is a histogram; use get()")
        return metric.value

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Flat, JSON-serializable view of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def clear(self) -> None:
        self._metrics.clear()

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold another registry's counters/gauges/histograms into this one
        (used when aggregating multiple runs into one report)."""
        if isinstance(other, MetricsRegistry):
            items = other._metrics.items()
        else:
            raise TypeError("merge expects a MetricsRegistry")
        for name, metric in items:
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(name).set(metric.value)
            else:
                mine = self.histogram(name, metric.bounds)
                for i, c in enumerate(metric.counts):
                    mine.counts[i] += c
                mine.count += metric.count
                mine.sum += metric.sum
                mine.min = min(mine.min, metric.min)
                mine.max = max(mine.max, metric.max)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


# ---------------------------------------------------------------- global sink
# An opt-in process-wide registry: code that constructs Machines internally
# (the experiment drivers, the CLI) can be observed without threading a
# registry through every call.  Default off, so library users pay nothing.
_GLOBAL: MetricsRegistry | None = None


def enable_global_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the process-wide default.

    Machines constructed *after* this call with ``metrics=None`` report
    into it.  Returns the installed registry."""
    global _GLOBAL
    _GLOBAL = registry if registry is not None else MetricsRegistry()
    return _GLOBAL


def disable_global_metrics() -> None:
    """Remove the process-wide registry (new machines stop reporting)."""
    global _GLOBAL
    _GLOBAL = None


def current_global_metrics() -> MetricsRegistry | None:
    return _GLOBAL
