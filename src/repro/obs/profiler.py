"""Phase profiling: structured reports of one simulated run.

:class:`RunReport` is the stable, serializable summary the host-level API
returns — per-phase wall times, the rank-to-rank traffic matrix, message
and collective counts, and an optional metrics snapshot — so callers can
do cost accounting (the paper's Tables 1–2 / Figures 3–5 style) without
reaching into simulator internals.

:class:`PhaseProfiler` bundles the two observers (a
:class:`~repro.machine.trace.Tracer` and a
:class:`~repro.obs.registry.MetricsRegistry`) behind one context manager::

    with PhaseProfiler() as prof:
        result = repro.pack(a, m, grid=4, profiler=prof)
    prof.report.to_json("pack.report.json")
    prof.write_chrome_trace("pack.trace.json")

The host functions in :mod:`repro.core.api` accept ``profiler=`` and call
:meth:`PhaseProfiler.finish` with the run; standalone machine users can do
the same with their own :class:`~repro.machine.engine.Machine`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["RunReport", "PhaseProfiler", "build_run_report"]


@dataclass
class RunReport:
    """Structured outcome of one observed run.  All times in seconds.

    Attributes
    ----------
    op:
        what ran (``"pack"``, ``"unpack"``, ``"ranking"``, ``"run"``).
    nprocs / spec:
        machine shape and cost profile name.
    time_domain:
        ``"simulated"`` (cost-model seconds, the simulator backend) or
        ``"wall"`` (real host seconds, the multiprocessing backend);
        copied from the run so reports from different backends are never
        silently comparable.
    elapsed:
        elapsed time in the report's time domain (max final rank clock).
    phase_times:
        per-phase wall time — max over ranks of the per-rank total, the
        same quantity as ``RunResult.phase_time`` per leaf phase.
    total_messages / total_words / total_ops / collective_ops:
        run-wide traffic and work sums.
    load_imbalance:
        max/mean of per-rank local op counts.
    per_rank:
        one ``ProcStats.snapshot()`` dict per rank.
    traffic_matrix:
        ``nprocs x nprocs`` point-to-point word counts (rows = senders),
        from the tracer; ``None`` when the run was not traced.
    metrics:
        ``MetricsRegistry.snapshot()`` dict, or ``None``.
    plan:
        plan-cache outcome of the call (``{"cache": "hit"|"miss"|"off",
        "compile_ms", "fingerprint", "plan_bytes"}``) when the host call
        used ``plan_cache=``; ``None`` otherwise.  On a hit,
        ``compile_ms`` is 0.0 — the compile prefix was replayed, not
        computed — which is the profiler-visible "plan.compile ≈ 0"
        signal.
    """

    op: str
    nprocs: int
    spec: str
    elapsed: float
    phase_times: dict[str, float]
    total_messages: int
    total_words: int
    total_ops: float
    collective_ops: int
    load_imbalance: float
    per_rank: list[dict] = field(repr=False, default_factory=list)
    traffic_matrix: list[list[int]] | None = field(repr=False, default=None)
    metrics: dict[str, Any] | None = field(repr=False, default=None)
    time_domain: str = "simulated"
    plan: dict[str, Any] | None = field(repr=False, default=None)

    # ------------------------------------------------------------- accessors
    def phase_time(self, prefix: str) -> float:
        """Aggregate wall time of every phase at or below ``prefix``."""
        total = 0.0
        for name, t in self.phase_times.items():
            if name == prefix or name.startswith(prefix + "."):
                total += t
        return total

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1e3

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "nprocs": self.nprocs,
            "spec": self.spec,
            "time_domain": self.time_domain,
            "elapsed_seconds": self.elapsed,
            "phase_times_seconds": dict(self.phase_times),
            "total_messages": self.total_messages,
            "total_words": self.total_words,
            "total_ops": self.total_ops,
            "collective_ops": self.collective_ops,
            "load_imbalance": self.load_imbalance,
            "per_rank": list(self.per_rank),
            "traffic_matrix_words": self.traffic_matrix,
            "metrics": self.metrics,
            "plan": self.plan,
        }

    def to_json(self, path=None, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    def summary(self) -> str:
        lines = [
            f"{self.op}: ranks={self.nprocs} spec={self.spec} "
            f"time={self.time_domain} "
            f"elapsed={self.elapsed * 1e3:.3f} ms "
            f"msgs={self.total_messages} words={self.total_words} "
            f"collectives={self.collective_ops} "
            f"imbalance={self.load_imbalance:.2f}",
        ]
        if self.plan is not None:
            compile_ms = self.plan.get("compile_ms")
            lines.append(
                f"  plan cache={self.plan.get('cache')}"
                + (f" compile={compile_ms:.3f} ms" if compile_ms is not None
                   else "")
            )
        for name in sorted(self.phase_times):
            lines.append(f"  {name:<40s} {self.phase_times[name] * 1e3:10.3f} ms")
        return "\n".join(lines)


def build_run_report(
    run,
    tracer=None,
    metrics=None,
    op: str = "run",
    spec: str = "?",
    plan: dict | None = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from a finished run and its observers.

    ``run`` is a :class:`~repro.machine.stats.RunResult`; ``tracer`` and
    ``metrics`` are optional — absent observers simply leave their report
    fields ``None``.
    """
    traffic = None
    if tracer is not None:
        n = run.nprocs
        traffic = [[0] * n for _ in range(n)]
        for src, dst, words in tracer.message_pairs():
            traffic[src][dst] += words
    return RunReport(
        op=op,
        nprocs=run.nprocs,
        spec=spec,
        elapsed=run.elapsed,
        phase_times=run.phase_breakdown(),
        total_messages=run.total_messages,
        total_words=run.total_words,
        total_ops=run.total_ops,
        collective_ops=sum(s.ctrl_ops for s in run.stats),
        load_imbalance=run.load_imbalance(),
        per_rank=[s.snapshot() for s in run.stats],
        traffic_matrix=traffic,
        metrics=metrics.snapshot() if metrics is not None else None,
        time_domain=getattr(run, "time_domain", "simulated"),
        plan=plan,
    )


class PhaseProfiler:
    """Bundles a tracer and a metrics registry for one (or more) runs.

    Pass to :func:`repro.pack` / :func:`repro.unpack` /
    :func:`repro.ranking` via ``profiler=``, or attach the parts to a
    :class:`~repro.machine.engine.Machine` yourself (``tracer=prof.tracer,
    metrics=prof.metrics``) and call :meth:`finish` with the run.

    Works as a context manager purely for scoping readability; ``__exit__``
    does not discard anything, so the report remains available after the
    block.
    """

    def __init__(self, trace: bool = True, metrics: bool = True,
                 capture_phases: bool = True):
        if trace:
            from ..machine.trace import Tracer

            self.tracer = Tracer(capture_phases=capture_phases)
        else:
            self.tracer = None
        if metrics:
            from .registry import MetricsRegistry

            self.metrics = MetricsRegistry()
        else:
            self.metrics = None
        self.run = None
        self.report: RunReport | None = None

    # -------------------------------------------------------------- lifecycle
    def __enter__(self) -> "PhaseProfiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def finish(
        self, run, op: str = "run", spec: str = "?", plan: dict | None = None
    ) -> RunReport:
        """Build (and store) the report for a completed run."""
        self.run = run
        self.report = build_run_report(
            run, tracer=self.tracer, metrics=self.metrics, op=op, spec=spec,
            plan=plan,
        )
        return self.report

    # -------------------------------------------------------------- exports
    def write_chrome_trace(self, path, metadata: dict | None = None) -> int:
        """Export the traced run to ``path`` (Chrome trace JSON)."""
        if self.tracer is None:
            raise ValueError("profiler was created with trace=False")
        if self.run is None:
            raise ValueError("no finished run; call finish() first")
        from .chrome_trace import write_chrome_trace

        meta = {"op": self.report.op if self.report else "run"}
        meta.update(metadata or {})
        return write_chrome_trace(path, self.tracer, run=self.run, metadata=meta)

    def write_metrics(self, path) -> None:
        """Export the metrics snapshot to ``path`` (.json or .csv)."""
        if self.metrics is None:
            raise ValueError("profiler was created with metrics=False")
        from .exporters import write_metrics

        write_metrics(path, self.metrics)

    def __repr__(self) -> str:
        parts = []
        if self.tracer is not None:
            parts.append(f"{len(self.tracer)} events")
        if self.metrics is not None:
            parts.append(f"{len(self.metrics)} metrics")
        state = "finished" if self.report is not None else "pending"
        return f"PhaseProfiler({', '.join(parts)}; {state})"
