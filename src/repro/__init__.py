"""repro — PACK/UNPACK on coarse-grained distributed-memory machines.

A full reproduction of Bae & Ranka, *PACK/UNPACK on Coarse-Grained
Distributed Memory Parallel Machines* (IPPS 1996): the parallel ranking
algorithm, the SSS/CSS/CMS storage and message schemes, the cyclic-to-block
redistribution pre-passes, and the prefix-reduction-sum collectives — all
running on a deterministic simulated machine implementing the paper's
two-level cost model.

Quick start::

    import numpy as np
    import repro

    a = np.arange(64.0).reshape(8, 8)
    m = a % 3 == 0
    result = repro.pack(a, m, grid=(2, 2), block=(2, 2), scheme="cms")
    print(result.vector)          # the packed elements, in array order
    print(result.times)           # simulated per-phase CM-5 times

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduced tables and figures.
"""

from .machine import (
    CM5,
    ETHERNET_CLUSTER,
    IDEAL,
    Context,
    DeadlockError,
    LocalCostModel,
    Machine,
    MachineError,
    MachineSpec,
    RunResult,
)

__version__ = "1.1.0"

from .hpf import (
    BLOCK,
    CYCLIC,
    BlockCyclic,
    DimLayout,
    DistributedArray,
    GridLayout,
    VectorLayout,
)
from .core import (
    PackConfig,
    PackResult,
    Plan,
    PlanCache,
    RankingResult,
    Scheme,
    UnpackResult,
    count,
    default_plan_cache,
    pack,
    pack_many,
    ranking,
    reset_default_plan_cache,
    unpack,
)
from .obs import MetricsRegistry, PhaseProfiler, RunReport
from .runtime import (
    Backend,
    BackendError,
    MpBackend,
    MpGangError,
    SimBackend,
    available_backends,
    get_backend,
)
from .serial import mask_ranks, pack_reference, unpack_reference

__all__ = [
    "BLOCK",
    "Backend",
    "BackendError",
    "BlockCyclic",
    "CM5",
    "CYCLIC",
    "Context",
    "DeadlockError",
    "DimLayout",
    "DistributedArray",
    "ETHERNET_CLUSTER",
    "GridLayout",
    "IDEAL",
    "LocalCostModel",
    "Machine",
    "MachineError",
    "MachineSpec",
    "MetricsRegistry",
    "MpBackend",
    "MpGangError",
    "PackConfig",
    "PackResult",
    "PhaseProfiler",
    "Plan",
    "PlanCache",
    "RankingResult",
    "RunReport",
    "RunResult",
    "Scheme",
    "SimBackend",
    "UnpackResult",
    "VectorLayout",
    "__version__",
    "available_backends",
    "count",
    "default_plan_cache",
    "get_backend",
    "mask_ranks",
    "pack",
    "pack_many",
    "pack_reference",
    "ranking",
    "reset_default_plan_cache",
    "unpack",
    "unpack_reference",
]
