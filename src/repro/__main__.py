"""Top-level command line: ``python -m repro <command>``.

Commands:

* ``info`` — library version, machine profiles, available schemes and PRS
  algorithms;
* ``pack`` — run one parallel PACK on the simulated machine and print the
  simulated phase times (a quick what-if tool);
* ``unpack`` — the same for UNPACK;
* ``trace`` — run a workload under the profiler and emit a Chrome-trace
  JSON (open in chrome://tracing or https://ui.perfetto.dev);
* ``metrics`` — run a workload with a metrics registry and print/export
  the snapshot;
* ``chaos`` — fault-injection matrix: run PACK+UNPACK with the reliable
  transport across a seed x drop-rate grid and verify every cell against
  the serial oracle (exit 1 on any mismatch);
* ``plan`` — compile one workload's execution plan (the mask-dependent
  bookkeeping the plan cache stores), print its summary, optionally
  export the serialized plan or ``--repeat`` to demonstrate the cache
  hit.  See ``docs/plans.md``;
* ``conform`` — differential conformance fuzzing: seeded random
  configurations checked against the serial reference, failures shrunk to
  minimal repros (exit 1 on any failure); ``--corpus DIR`` also replays
  the regression corpus, and ``--backend mp`` replays it on the
  real-process backend.  See ``docs/conformance.md``;
* ``runtime`` — execution-backend smoke test: runs the primitive set
  (barrier, allreduce, exclusive prefix sum, alltoallv, a send/recv ring)
  and a PACK/UNPACK round against the serial oracle on the chosen
  backend (exit 1 on any failure).  See ``docs/runtime.md``;
* ``profile`` — cross-rank runtime cost attribution: run an op under a
  :class:`~repro.obs.runtime.RuntimeProfiler` and print the
  phase-attribution table (what fraction of host wall is fork / pickle /
  queue-wait / compute under ``--backend mp``), validate the P×P
  communication matrix's conservation invariant, and optionally export
  the merged per-rank Chrome trace / matrix / profile JSON;
* ``experiments ...`` — delegate to :mod:`repro.experiments`.

``pack`` / ``unpack`` / ``trace`` / ``metrics`` accept ``--backend
{sim,mp}``: ``sim`` (default) runs on the deterministic cost simulator
and reports simulated times; ``mp`` runs one OS process per rank on real
cores and reports wall times.

Malformed geometry options (``--shape``, ``--grid``, ``--block``,
``--procs``) exit with status 2 and a one-line error, never a traceback.

``pack``/``unpack`` accept the fault-injection family (``--fault-seed``,
``--drop-rate``, ``--dup-rate``, ``--corrupt-rate``, ``--delay-rate``,
``--crash-rank RANK:STEP``, ``--straggler RANK:FACTOR``, ``--reliable``)
— see ``docs/fault_tolerance.md``.

``pack``/``unpack`` also accept ``--trace-out`` / ``--metrics-out`` /
``--report-out`` to capture observability artifacts from a normal run,
and ``experiments`` accepts ``--metrics-out`` (before the experiment
names) to snapshot the process-wide registry.  See
``docs/observability.md``.

Examples::

    python -m repro info
    python -m repro pack --n 65536 --procs 16 --block 8 --density 0.5
    python -m repro pack --n 65536 --procs 8 --backend mp
    python -m repro runtime --backend mp --procs 4
    python -m repro profile pack --backend mp -p 8 --trace-out pack.mp.trace.json
    python -m repro pack --shape 512x512 --grid 4x4 --block 4 --scheme sss
    python -m repro trace --nprocs 4 --n 1024 --block 8 --out pack.trace.json
    python -m repro metrics --op unpack --n 4096 --procs 8 --out m.json
    python -m repro pack --n 4096 --procs 8 --drop-rate 0.05 --reliable
    python -m repro chaos --seeds 3 --rates 0.01,0.05,0.1
    python -m repro conform --cases 200 --seed 4 --corpus tests/conformance/corpus
    python -m repro experiments table1 --full
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


class CLIError(Exception):
    """A user-input problem: printed as one line to stderr, exit status 2."""


def _parse_dims(text: str, flag: str = "--shape") -> tuple[int, ...]:
    try:
        dims = tuple(int(x) for x in text.lower().split("x"))
    except ValueError:
        raise CLIError(
            f"{flag} expects INTxINT... (e.g. 512x512), got {text!r}"
        ) from None
    if not dims or any(d < 0 for d in dims):
        raise CLIError(f"{flag} dimensions must be >= 0, got {text!r}")
    return dims


def _build_spec(args):
    from .machine import CM5, ETHERNET_CLUSTER, IDEAL

    return {"cm5": CM5, "cluster": ETHERNET_CLUSTER, "ideal": IDEAL}[args.machine]


def _workload(args):
    from .workloads import make_mask

    if args.shape:
        shape = _parse_dims(args.shape, "--shape")
        grid = _parse_dims(args.grid, "--grid") if args.grid else (4,) * len(shape)
        if len(grid) != len(shape):
            raise CLIError(
                f"--grid rank {len(grid)} does not match --shape rank "
                f"{len(shape)} ({args.grid!r} vs {args.shape!r})"
            )
    else:
        shape = (args.n,)
        grid = (args.procs,)
    if any(p < 1 for p in grid):
        raise CLIError(f"processor grid must be >= 1 per axis, got {grid}")
    rng = np.random.default_rng(args.seed)
    array = rng.random(shape)
    mask = make_mask(shape, args.mask if args.mask else args.density, seed=args.seed)
    block = args.block if args.block else "block"
    if block not in ("block", "cyclic"):
        try:
            block = int(block)
        except ValueError:
            raise CLIError(
                f"--block expects an integer block size or 'block'/'cyclic', "
                f"got {args.block!r}"
            ) from None
        if block < 1:
            raise CLIError(f"--block must be >= 1, got {block}")
    return array, mask, grid, block


def cmd_info(_args) -> int:
    import repro
    from .collectives import PRS_ALGORITHMS
    from .core.schemes import Scheme
    from .machine import CM5, ETHERNET_CLUSTER, IDEAL

    print(f"repro {repro.__version__} — PACK/UNPACK on coarse-grained machines")
    print(f"  schemes: {', '.join(s.value for s in Scheme)} (+ red.1/red.2 pre-passes)")
    print(f"  PRS algorithms: {', '.join(PRS_ALGORITHMS)}")
    print("  machine profiles:")
    for spec in (CM5, ETHERNET_CLUSTER, IDEAL):
        ctrl = "ctrl-net" if spec.has_control_network else "no ctrl-net"
        print(
            f"    {spec.name:18s} tau={spec.tau * 1e6:7.1f}us "
            f"mu={spec.mu * 1e6:5.2f}us/word delta={spec.delta * 1e6:5.2f}us/op "
            f"({ctrl})"
        )
    print("  experiments: python -m repro experiments all")
    return 0


def _make_profiler(args):
    """A PhaseProfiler when any observability output was requested."""
    wants = any(
        getattr(args, name, None)
        for name in ("trace_out", "metrics_out", "report_out")
    )
    if not wants:
        return None
    from .obs import PhaseProfiler

    return PhaseProfiler()


def _emit_observability(args, profiler) -> None:
    if profiler is None:
        return
    if getattr(args, "trace_out", None):
        n = profiler.write_chrome_trace(args.trace_out)
        print(f"[trace: {n} events -> {args.trace_out}]")
    if getattr(args, "metrics_out", None):
        profiler.write_metrics(args.metrics_out)
        print(f"[metrics -> {args.metrics_out}]")
    if getattr(args, "report_out", None):
        profiler.report.to_json(args.report_out)
        print(f"[report -> {args.report_out}]")


def _parse_rank_map(entries, value_type, flag):
    """Parse repeated ``RANK:VALUE`` options into a dict."""
    out = {}
    for entry in entries or ():
        try:
            rank_s, value_s = entry.split(":", 1)
            out[int(rank_s)] = value_type(value_s)
        except ValueError:
            raise SystemExit(f"{flag} expects RANK:VALUE, got {entry!r}")
    return out


def _plan_cache_arg(args):
    """``plan_cache=`` argument for the core API from ``--plan-cache``."""
    return True if getattr(args, "plan_cache", "off") == "on" else None


def _print_plan_info(result) -> None:
    info = getattr(result, "plan_info", None)
    if not info:
        return
    line = f"  plan cache: {info['cache']}"
    if info.get("compile_ms") is not None:
        line += (f"  compile {info['compile_ms']:.3f} ms"
                 f"  plan {info['plan_bytes']} B"
                 f"  key {info['fingerprint'][:12]}")
    print(line)


def _build_faults(args):
    """(FaultPlan | None, reliability) from the ``--faults`` flag family."""
    from .faults import FaultPlan

    plan = FaultPlan(
        seed=args.fault_seed,
        drop_rate=args.drop_rate,
        dup_rate=args.dup_rate,
        corrupt_rate=args.corrupt_rate,
        delay_rate=args.delay_rate,
        crash_at=_parse_rank_map(args.crash_rank, int, "--crash-rank"),
        stragglers=_parse_rank_map(args.straggler, float, "--straggler"),
    )
    if plan.is_noop:
        plan = None
    reliability = True if args.reliable else None
    return plan, reliability


def cmd_pack(args) -> int:
    from .core.api import pack

    array, mask, grid, block = _workload(args)
    profiler = _make_profiler(args)
    faults, reliability = _build_faults(args)
    result = pack(
        array, mask, grid=grid, block=block, scheme=args.scheme,
        spec=_build_spec(args), redistribute=args.redistribute,
        validate=not args.no_validate, profiler=profiler,
        faults=faults, reliability=reliability, backend=args.backend,
        plan_cache=_plan_cache_arg(args),
    )
    print(f"PACK {array.shape} on grid {grid}, block {block}, "
          f"scheme {args.scheme}: Size = {result.size}")
    _print_plan_info(result)
    if args.backend != "sim":
        print(f"  backend {args.backend}: one OS process per rank, "
              f"{result.time_domain}-clock times")
    if faults is not None:
        print(f"  faults: {faults.describe()}"
              f"{' + reliable transport' if reliability else ''}")
    print(f"  total {result.total_ms:9.3f} ms   local {result.local_ms:9.3f} ms")
    print(f"  prs   {result.prs_ms:9.3f} ms   m2m   {result.m2m_ms:9.3f} ms")
    if args.phases:
        for name, t in sorted(result.times.items()):
            print(f"    {name:<40s} {t:9.3f} ms")
    _emit_observability(args, profiler)
    return 0


def cmd_unpack(args) -> int:
    from .core.api import unpack

    array, mask, grid, block = _workload(args)
    size = int(mask.sum())
    rng = np.random.default_rng(args.seed + 1)
    profiler = _make_profiler(args)
    faults, reliability = _build_faults(args)
    result = unpack(
        rng.random(size), mask, array, grid=grid, block=block,
        scheme=args.scheme if args.scheme in ("sss", "css") else "css",
        spec=_build_spec(args), validate=not args.no_validate,
        profiler=profiler, faults=faults, reliability=reliability,
        backend=args.backend, plan_cache=_plan_cache_arg(args),
    )
    print(f"UNPACK into {array.shape} on grid {grid}, block {block}: "
          f"Size = {result.size}")
    _print_plan_info(result)
    if args.backend != "sim":
        print(f"  backend {args.backend}: one OS process per rank, "
              f"{result.time_domain}-clock times")
    if faults is not None:
        print(f"  faults: {faults.describe()}"
              f"{' + reliable transport' if reliability else ''}")
    print(f"  total {result.total_ms:9.3f} ms   local {result.local_ms:9.3f} ms")
    print(f"  prs   {result.prs_ms:9.3f} ms   m2m   {result.m2m_ms:9.3f} ms")
    _emit_observability(args, profiler)
    return 0


def cmd_chaos(args) -> int:
    """Seed x drop-rate chaos matrix: every cell must stay oracle-correct."""
    if args.backend == "mp":
        return _chaos_mp(args)
    from .core.api import pack, unpack
    from .faults import FaultPlan
    from .machine import RankFailureError
    from .workloads import make_mask

    spec = _build_spec(args)
    shape = (args.n,)
    grid = (args.procs,)
    rng = np.random.default_rng(args.seed)
    array = rng.random(shape)
    mask = make_mask(shape, args.density, seed=args.seed)
    vector = rng.random(int(mask.sum()))
    rates = [float(r) for r in args.rates.split(",")]
    seeds = range(args.fault_seed, args.fault_seed + args.seeds)

    failures = []
    cells = 0
    print(f"chaos: PACK+UNPACK n={args.n} P={args.procs} on {spec.name}, "
          f"dup={args.dup_rate} corrupt={args.corrupt_rate}")
    for rate in rates:
        times = []
        for seed in seeds:
            plan = FaultPlan(
                seed=seed, drop_rate=rate,
                dup_rate=args.dup_rate, corrupt_rate=args.corrupt_rate,
            )
            cells += 1
            try:
                r = pack(array, mask, grid=grid, scheme=args.scheme, spec=spec,
                         faults=plan, reliability=True, validate=True)
                u = unpack(vector, mask, array, grid=grid, scheme="css",
                           spec=spec, faults=plan, reliability=True,
                           validate=True)
                times.append(r.total_ms + u.total_ms)
            except Exception as exc:  # noqa: BLE001 - report every cell
                failures.append((rate, seed, exc))
                times.append(float("nan"))
        cell_s = " ".join(f"{t:8.3f}" for t in times)
        print(f"  drop={rate:<5g} sim-ms per seed: {cell_s}")

    # Reproducibility spot check: the first cell twice, bit-for-bit.
    plan = FaultPlan(seed=args.fault_seed, drop_rate=rates[0],
                     dup_rate=args.dup_rate, corrupt_rate=args.corrupt_rate)
    t1 = pack(array, mask, grid=grid, scheme=args.scheme, spec=spec,
              faults=plan, reliability=True, validate=False).total_ms
    t2 = pack(array, mask, grid=grid, scheme=args.scheme, spec=spec,
              faults=plan, reliability=True, validate=False).total_ms
    if t1 != t2:
        failures.append((rates[0], args.fault_seed,
                         AssertionError(f"non-reproducible: {t1} != {t2}")))
    else:
        print(f"  reproducibility: two identical runs -> {t1:.3f} ms (bit-for-bit)")

    # Crash smoke: a mid-run rank crash must surface as RankFailureError.
    # Step 1 = rank 1's second generator resumption, well inside any run.
    try:
        pack(array, mask, grid=grid, scheme=args.scheme, spec=spec,
             faults=FaultPlan(seed=args.fault_seed, crash_at={1: 1}),
             validate=False)
        failures.append(("crash", args.fault_seed,
                         AssertionError("crash did not raise RankFailureError")))
    except RankFailureError as exc:
        print(f"  crash smoke: {exc}")
    except Exception as exc:  # noqa: BLE001
        failures.append(("crash", args.fault_seed, exc))

    if failures:
        print(f"FAIL: {len(failures)}/{cells} chaos cells failed:")
        for rate, seed, exc in failures:
            print(f"  drop={rate} seed={seed}: {type(exc).__name__}: {exc}")
        return 1
    print(f"OK: {cells} chaos cells oracle-correct, reproducible, "
          f"crash attribution works")
    return 0


def _chaos_mp(args) -> int:
    """Real-process chaos: seeded SIGKILL/SIGSTOP/poison faults against a
    supervised persistent gang.  Every seed must recover to the
    bit-identical fault-free answer; mean-time-to-recovery is reported."""
    from time import monotonic

    from .core.api import pack
    from .faults.chaos import ChaosPlan
    from .runtime import GangSupervisor, MpGangError, RetryPolicy
    from .workloads import make_mask

    fail_kinds = ("spawn_failure", "rank_death", "heartbeat_miss",
                  "op_timeout", "poisoned_result")
    spec = _build_spec(args)
    rng = np.random.default_rng(args.seed)
    array = rng.random(args.n)
    mask = make_mask((args.n,), args.density, seed=args.seed)
    seeds = range(args.fault_seed, args.fault_seed + args.seeds)
    retry = RetryPolicy(max_retries=3, base_delay=0.05, jitter=0.1,
                        seed=args.fault_seed)
    kinds = tuple(args.kill_kinds.split(","))

    print(f"chaos --backend mp: PACK n={args.n} P={args.procs} on "
          f"{spec.name}; {args.kills} real fault(s)/seed, "
          f"kinds={','.join(kinds)}")
    with GangSupervisor(timeout=args.timeout) as clean:
        base = pack(array, mask, grid=(args.procs,), scheme=args.scheme,
                    spec=spec, validate=True, backend=clean)
    print(f"  baseline: Size={base.size} on a fault-free supervised gang")

    failures = []
    for seed in seeds:
        plan = ChaosPlan.random(
            seed=seed, nprocs=args.procs, n_events=args.kills, kinds=kinds,
            phases=("spawn", "start", "collective", "flush"),
        )
        sup = GangSupervisor(timeout=args.timeout, retry=retry, chaos=plan,
                             heartbeat_interval=0.1, heartbeat_timeout=3.0)
        t0 = monotonic()
        print(f"  seed={seed}: {plan.describe()}")
        try:
            with sup:
                res = pack(array, mask, grid=(args.procs,),
                           scheme=args.scheme, spec=spec, validate=True,
                           backend=sup)
                st = sup.stats
        except MpGangError as exc:
            failures.append((seed, f"unrecovered: {exc}"))
            print(f"    FAIL: {exc}")
            continue
        wall_ms = (monotonic() - t0) * 1e3
        t_fail = min((e.t for e in st.events if e.kind in fail_kinds),
                     default=None)
        t_ok = max((e.t for e in st.events if e.kind == "op_ok"),
                   default=None)
        mttr_ms = ((t_ok - t_fail) * 1e3
                   if t_fail is not None and t_ok is not None else 0.0)
        identical = (res.size == base.size
                     and bool(np.array_equal(res.vector, base.vector)))
        print(f"    recovered={identical} observed={sum(st.failures.values())}"
              f" retries={st.retries} rebuilds={st.rebuilds} "
              f"MTTR={mttr_ms:.0f} ms wall={wall_ms:.0f} ms")
        if not identical:
            failures.append((seed, "result diverged from fault-free baseline"))

    if failures:
        print(f"FAIL: {len(failures)}/{args.seeds} chaos seeds failed:")
        for seed, why in failures:
            print(f"  seed={seed}: {why}")
        return 1
    print(f"OK: {args.seeds} real-process chaos seeds recovered "
          f"bit-identical to the fault-free baseline")
    return 0


def cmd_plan(args) -> int:
    """Compile the plan for one workload and print (or export) it.

    Runs the op once with a private plan cache so the compile is captured,
    prints the plan summary, and with ``--repeat`` runs it again to
    demonstrate the hit (compile time drops to zero — the charges are
    replayed from the plan, so the simulated result is bit-identical).
    """
    from .core.api import pack, ranking, unpack
    from .core.plan_cache import PlanCache

    array, mask, grid, block = _workload(args)
    spec = _build_spec(args)
    cache = PlanCache(capacity=32 if args.plan_cache_file else 4)
    if args.plan_cache_file:
        import os

        if os.path.exists(args.plan_cache_file):
            loaded = cache.load_into(args.plan_cache_file)
            print(f"[plan cache <- {args.plan_cache_file}: "
                  f"{loaded} plan(s)]")
    common = dict(grid=grid, block=block, spec=spec,
                  validate=not args.no_validate, backend=args.backend,
                  plan_cache=cache)

    def run():
        if args.op == "pack":
            return pack(array, mask, scheme=args.scheme, **common)
        if args.op == "unpack":
            rng = np.random.default_rng(args.seed + 1)
            return unpack(
                rng.random(int(mask.sum())), mask, array,
                scheme=args.scheme if args.scheme in ("sss", "css") else "css",
                **common,
            )
        return ranking(
            mask, scheme=args.scheme if args.scheme in ("sss", "css") else "css",
            **common,
        )

    result = run()
    key = cache.keys()[-1]  # LRU order: the key this run used is last
    plan = cache.peek(key)
    print(plan.summary())
    print(f"  key: {key.describe()}")
    info = result.plan_info or {}
    print(f"  compile: {info.get('compile_ms') or 0.0:.3f} ms wall "
          f"(status {info.get('cache', '?')})")
    if args.repeat:
        again = run()
        info2 = again.plan_info or {}
        line = (f"  repeat: status {info2.get('cache', '?')}, "
                f"compile {info2.get('compile_ms') or 0.0:.3f} ms")
        same = True
        if args.backend == "sim":
            # Simulated time is deterministic: the replayed charges must
            # reproduce it exactly.  (Wall backends vary run to run.)
            same = again.total_ms == result.total_ms
            line += f", simulated time {'bit-identical' if same else 'DIFFERS'}"
        print(line)
        if info2.get("cache") != "hit" or not same:
            return 1
    if args.out:
        import json
        from pathlib import Path

        Path(args.out).write_text(json.dumps(plan.to_dict()) + "\n")
        print(f"[plan -> {args.out}]")
    if args.plan_cache_file:
        saved = cache.save(args.plan_cache_file)
        print(f"[plan cache -> {args.plan_cache_file}: {saved} plan(s)]")
    return 0


def cmd_serve(args) -> int:
    """Run the async batching PACK/UNPACK service until SIGTERM/SIGINT."""
    import asyncio

    from .serve import PackUnpackServer, ServeConfig

    cfg = ServeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        max_delay=args.max_delay_ms / 1e3,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        max_inflight=args.max_inflight,
        plan_cache_capacity=args.plan_cache_capacity,
        plan_cache_file=args.plan_cache_file,
        metrics_out=args.metrics_out,
        warm=args.warm,
        timeout=args.timeout,
        transport=args.transport,
    )
    server = PackUnpackServer(cfg)

    def _ready(srv):
        print(f"serving on {srv.host}:{srv.port} (backend={cfg.backend}, "
              f"window={cfg.max_delay * 1e3:g} ms, "
              f"max_batch={cfg.max_batch})", flush=True)

    asyncio.run(server.run_until_signal(ready=_ready))
    stats = server.engine.plan_cache.stats()
    print(f"drained: {server.metrics.value('serve.requests'):.0f} request(s), "
          f"{server.batcher.batches} batch(es) "
          f"({server.batcher.coalesced_batches} coalesced), "
          f"{server.admission.shed} shed; plan cache {stats.describe()}")
    return 0


def cmd_loadgen(args) -> int:
    """Seeded open-loop load against a running `repro serve`."""
    from .serve import LoadgenConfig, run_loadgen

    ops = tuple(s for s in args.ops.split(",") if s)
    bad = [o for o in ops if o not in ("pack", "unpack", "ranking")]
    if bad:
        raise CLIError(f"unknown op(s) in --ops: {', '.join(bad)}")
    cfg = LoadgenConfig(
        host=args.host,
        port=args.port,
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        n=args.n,
        procs=args.procs,
        density=args.density,
        masks=args.masks,
        ops=ops or ("pack",),
        scheme=args.scheme,
        connections=args.connections,
        timeout=args.timeout,
        validate=args.validate,
    )
    report = run_loadgen(cfg)
    lat = report["latency_ms"]
    print(f"loadgen: {report['ok']}/{report['sent']} ok, "
          f"{report['shed']} shed, {report['errors']} error(s) in "
          f"{report['elapsed_s']:.2f} s "
          f"({report['throughput_rps']:.1f} req/s)")
    if lat["p50"] is not None:
        print(f"  latency ms: p50={lat['p50']:.2f} p95={lat['p95']:.2f} "
              f"p99={lat['p99']:.2f} max={lat['max']:.2f}")
    print(f"  batch occupancy: {report['batch_occupancy']} "
          f"(coalesced {report['coalesced_fraction']:.0%}); "
          f"plan {report['plan']}")
    if args.json_out:
        import json

        with open(args.json_out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
        print(f"[report -> {args.json_out}]")
    if report["ok"] == 0 or report["errors"] > 0:
        return 2
    return 0


def cmd_conform(args) -> int:
    """Differential conformance fuzz + optional corpus replay (exit 1 on any
    failure; every fuzz failure is printed with its minimized repro)."""
    from .conformance import fuzz, replay_corpus

    failed = 0
    if args.corpus:
        if args.cross_check:
            from pathlib import Path

            from .conformance import cross_check_case, load_corpus_case

            results = []
            for path in sorted(Path(args.corpus).glob("*.json")):
                case, bug = load_corpus_case(path)
                results.append((path, bug, cross_check_case(case)))
            label = "sim+mp cross-check"
        elif args.plan_cache == "on":
            # Replay twice through one shared cache: pass 1 compiles the
            # plans, pass 2 must replay them (hits > 0, same oracle
            # verdicts) — this is the bit-identity gate CI runs.
            from .core.plan_cache import PlanCache

            cache = PlanCache(capacity=256)
            first = replay_corpus(args.corpus, backend=args.backend,
                                  plan_cache=cache)
            compiled = cache.stats().misses
            results = replay_corpus(args.corpus, backend=args.backend,
                                    plan_cache=cache)
            stats = cache.stats()
            label = (f"backend={args.backend}, plan cache: "
                     f"{compiled} compiled, {stats.hits} replayed")
            failed += sum(1 for _, _, o in first if not o.ok)
            if compiled and not stats.hits:
                print("PLAN CACHE: second corpus pass produced zero hits "
                      "(every case recompiled — cache keying is broken)")
                failed += 1
        else:
            results = replay_corpus(args.corpus, backend=args.backend)
            label = f"backend={args.backend}"
        bad = [(p, bug, o) for p, bug, o in results if not o.ok]
        skipped = sum(1 for _, _, o in results if o.kind == "skipped")
        print(f"corpus ({label}): {len(results)} entr(ies) from {args.corpus}: "
              f"{len(bad)} failure(s)"
              + (f", {skipped} skipped (simulator-only)" if skipped else ""))
        for path, bug, outcome in bad:
            print(f"  REGRESSION {path.name}: {outcome}\n    pinned bug: {bug}")
        failed += len(bad)

    progress = None
    if args.cases >= 100:
        def progress(done, total, fails):
            if done % 100 == 0 or done == total:
                print(f"  [{done}/{total}] {fails} failure(s)", flush=True)

    report = fuzz(seed=args.seed, cases=args.cases,
                  max_shrink=args.max_shrink, progress=progress)
    print(report.summary())
    failed += len(report.failures)
    return 1 if failed else 0


def _run_observed(args):
    """Run the selected op under a PhaseProfiler (trace/metrics commands)."""
    from .core.api import pack, ranking, unpack
    from .obs import PhaseProfiler

    array, mask, grid, block = _workload(args)
    spec = _build_spec(args)
    profiler = PhaseProfiler()
    plan_cache = _plan_cache_arg(args)
    op = args.op
    if op == "pack":
        result = pack(
            array, mask, grid=grid, block=block, scheme=args.scheme,
            spec=spec, validate=not args.no_validate, profiler=profiler,
            backend=args.backend, plan_cache=plan_cache,
        )
    elif op == "unpack":
        rng = np.random.default_rng(args.seed + 1)
        result = unpack(
            rng.random(int(mask.sum())), mask, array, grid=grid, block=block,
            scheme=args.scheme if args.scheme in ("sss", "css") else "css",
            spec=spec, validate=not args.no_validate, profiler=profiler,
            backend=args.backend, plan_cache=plan_cache,
        )
    else:
        result = ranking(
            mask, grid=grid, block=block, spec=spec,
            validate=not args.no_validate, profiler=profiler,
            backend=args.backend, plan_cache=plan_cache,
        )
    return profiler, result


def cmd_trace(args) -> int:
    profiler, result = _run_observed(args)
    n = profiler.write_chrome_trace(args.out)
    report = profiler.report
    print(f"{args.op}: ranks={report.nprocs} Size = {result.size}  "
          f"elapsed {report.elapsed_ms:.3f} ms ({report.time_domain})")
    print(f"[trace: {n} events, {len(profiler.tracer)} simulator records "
          f"-> {args.out}]")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_metrics(args) -> int:
    from .analysis.reporting import format_metrics

    profiler, result = _run_observed(args)
    snapshot = profiler.metrics.snapshot()
    print(format_metrics(
        snapshot, title=f"{args.op}: Size = {result.size}"
    ))
    if args.out:
        profiler.write_metrics(args.out)
        print(f"[metrics -> {args.out}]")
    if args.report_out:
        profiler.report.to_json(args.report_out)
        print(f"[report -> {args.report_out}]")
    return 0


def cmd_profile(args) -> int:
    """Cross-rank runtime cost attribution: where does the host time go?

    Runs the op under a :class:`~repro.obs.runtime.RuntimeProfiler`,
    prints the phase-attribution table, validates the communication
    matrix's conservation invariant (row sums == sends, column sums ==
    receives — exit 1 on violation), and optionally exports the merged
    per-rank Chrome trace, the P×P matrix and the full profile JSON.
    """
    import json

    from .core.api import pack, ranking, unpack
    from .obs.runtime import RuntimeProfiler
    from .runtime import MpBackend, get_backend

    array, mask, grid, block = _workload(args)
    spec = _build_spec(args)
    if args.backend == "mp":
        backend = MpBackend(timeout=args.timeout,
                            transport=getattr(args, "transport", None),
                            codec=getattr(args, "codec", None))
    else:
        backend = get_backend(args.backend)
    profiler = RuntimeProfiler(ring_capacity=args.ring_capacity)
    if args.op == "pack":
        result = pack(
            array, mask, grid=grid, block=block, scheme=args.scheme,
            spec=spec, validate=not args.no_validate, profile=profiler,
            backend=backend,
        )
    elif args.op == "unpack":
        rng = np.random.default_rng(args.seed + 1)
        result = unpack(
            rng.random(int(mask.sum())), mask, array, grid=grid, block=block,
            scheme=args.scheme if args.scheme in ("sss", "css") else "css",
            spec=spec, validate=not args.no_validate, profile=profiler,
            backend=backend,
        )
    else:
        result = ranking(
            mask, grid=grid, block=block, spec=spec,
            validate=not args.no_validate, profile=profiler, backend=backend,
        )
    profile = profiler.profile
    print(f"{args.op}: Size = {result.size}")
    print(profile.summary())
    if profile.dropped_events:
        print(f"  [ring overflow: {profile.dropped_events} spans dropped "
              f"from the trace; attribution table is still exact — "
              f"raise --ring-capacity]")
    try:
        profile.validate_conservation()
        print(f"  comm matrix: conservation OK "
              f"(row sums == sends, column sums == receives)")
    except ValueError as exc:
        print(f"FAIL: comm matrix conservation violated: {exc}")
        return 1
    if args.trace_out:
        n = profile.write_chrome_trace(args.trace_out)
        print(f"[trace: {n} events ({profile.nprocs} rank lanes + gang lane) "
              f"-> {args.trace_out}]")
    if args.matrix_out:
        with open(args.matrix_out, "w") as fh:
            json.dump(profile.matrix_dict(), fh, indent=2)
        print(f"[comm matrix -> {args.matrix_out}]")
    if args.report_out:
        profile.to_json(args.report_out)
        print(f"[profile report -> {args.report_out}]")
    return 0


def cmd_runtime(args) -> int:
    """Execution-backend smoke test: the SPMD primitive set plus one
    PACK/UNPACK round against the serial oracle, on the chosen backend."""
    from .core.api import pack, unpack
    from .runtime import (
        MpBackend, allreduce, alltoallv, barrier, exclusive_prefix_sum,
        get_backend,
    )
    from .workloads import make_mask

    # Run mp gangs under a wall-clock budget: a transport regression must
    # fail the smoke test, not hang it.
    transport = getattr(args, "transport", None)
    codec = getattr(args, "codec", None)
    if args.backend == "mp":
        backend = MpBackend(timeout=args.timeout, transport=transport,
                            codec=codec)
    elif args.backend == "supervised":
        from .runtime import GangSupervisor

        backend = GangSupervisor(timeout=args.timeout, transport=transport,
                                 codec=codec)
    else:
        backend = get_backend(args.backend)
    nprocs = args.procs
    if nprocs < 1:
        raise CLIError(f"--procs must be >= 1, got {nprocs}")
    n = 512 if args.quick else args.n
    via = (f" transport={backend.transport} codec={backend.codec}"
           if args.backend in ("mp", "supervised") else "")
    print(f"runtime smoke: backend={backend.name} "
          f"({backend.time_domain} time),{via} P={nprocs}")
    failures: list[str] = []

    def program(ctx, payload):
        ctx.phase("primitives")
        yield from barrier(ctx)
        total = yield from allreduce(ctx, ctx.rank + 1)
        offset = yield from exclusive_prefix_sum(ctx, ctx.rank + 1)
        ring = ctx.rank
        if ctx.size > 1:
            ctx.send((ctx.rank + 1) % ctx.size,
                     np.array([ctx.rank], dtype=np.int64), tag=7)
            msg = yield ctx.recv((ctx.rank - 1) % ctx.size, 7)
            ring = int(np.asarray(msg.payload)[0])
        outgoing = {q: np.full(q + 1, ctx.rank, dtype=np.int64)
                    for q in range(ctx.size) if q != ctx.rank}
        incoming = yield from alltoallv(ctx, outgoing)
        return {
            "total": total,
            "offset": offset,
            "ring": ring,
            "a2a": {int(q): np.asarray(block).copy()
                    for q, block in incoming.items()},
            "payload_sum": float(np.asarray(payload).sum()),
        }

    run = backend.run_spmd(
        program, nprocs,
        make_rank_args=lambda r, sh: (np.full(4, float(r)),),
    )
    for r, res in enumerate(run.results):
        if res["total"] != nprocs * (nprocs + 1) // 2:
            failures.append(f"rank {r}: allreduce -> {res['total']}")
        if res["offset"] != r * (r + 1) // 2:
            failures.append(f"rank {r}: exclusive_prefix_sum -> {res['offset']}")
        if res["ring"] != (r - 1) % nprocs:
            failures.append(f"rank {r}: ring recv -> {res['ring']}")
        for q, block in res["a2a"].items():
            if not np.array_equal(block, np.full(r + 1, q, dtype=np.int64)):
                failures.append(f"rank {r}: alltoallv block from {q} wrong")
        if res["payload_sum"] != 4.0 * r:
            failures.append(f"rank {r}: scattered payload wrong")
    print(f"  primitives: barrier/allreduce/xprefix/ring/alltoallv on "
          f"{nprocs} rank(s), elapsed {run.elapsed * 1e3:.3f} ms "
          f"({run.time_domain})")

    rng = np.random.default_rng(args.seed)
    array = rng.random(n)
    mask = make_mask((n,), args.density, seed=args.seed)
    try:
        packed = pack(array, mask, grid=(nprocs,), scheme="cms",
                      validate=True, backend=backend)
        restored = unpack(packed.vector, mask, array, grid=(nprocs,),
                          scheme="css", validate=True, backend=backend)
        if not np.array_equal(restored.array, array):
            failures.append("pack/unpack round trip is not the identity")
        print(f"  pack   n={n}: Size={packed.size}  "
              f"total {packed.total_ms:9.3f} ms ({packed.time_domain})")
        print(f"  unpack n={n}: oracle-exact round trip  "
              f"total {restored.total_ms:9.3f} ms ({restored.time_domain})")
    except Exception as exc:  # noqa: BLE001 - report, don't traceback
        failures.append(f"pack/unpack: {type(exc).__name__}: {exc}")

    if args.backend == "supervised":
        st = backend.stats
        print(f"  supervisor: gang epoch {st.gang_epoch}, "
              f"ops {st.ops} ({st.warm_ops} warm / {st.cold_ops} cold), "
              f"retries {st.retries}, rebuilds {st.rebuilds}, "
              f"fallbacks {st.fallbacks}")
        if st.fallbacks:
            failures.append(
                f"supervisor degraded to the simulator {st.fallbacks} "
                f"time(s): the real-process gang is not healthy")
        backend.shutdown()  # reap the warm gang: leak checks diff /dev/shm

    if failures:
        print(f"FAIL: {len(failures)} check(s) failed:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"OK: backend {backend.name} primitives + PACK/UNPACK "
          f"oracle-correct at P={nprocs}")
    return 0


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--n", type=int, default=16384, help="1-D array size")
    p.add_argument("-p", "--procs", "--nprocs", type=int, default=16,
                   dest="procs", help="1-D processor count")
    p.add_argument("--shape", help="nD shape, e.g. 512x512 (overrides --n)")
    p.add_argument("--grid", help="nD processor grid, e.g. 4x4")
    p.add_argument("--block", help="block size (int) or 'block'/'cyclic'")
    p.add_argument("--density", type=float, default=0.5, help="random mask density")
    p.add_argument("--mask", help="mask kind: e.g. 30%%, half, lt")
    p.add_argument("--scheme", default="cms", help="sss / css / cms")
    p.add_argument("--machine", default="cm5", choices=("cm5", "cluster", "ideal"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-validate", action="store_true")
    p.add_argument("--backend", default="sim",
                   choices=("sim", "mp", "supervised"),
                   help="execution backend: 'sim' (deterministic cost "
                        "simulator, simulated times), 'mp' (one OS "
                        "process per rank on real cores, wall times), or "
                        "'supervised' (persistent warm gang with "
                        "heartbeat supervision and retry recovery)")
    p.add_argument("--plan-cache", default="off", choices=("on", "off"),
                   dest="plan_cache",
                   help="compile the mask-dependent bookkeeping into a "
                        "cached plan (process-wide LRU) and replay it on "
                        "repeat calls with the same geometry and mask")


def _add_observability_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace-out", dest="trace_out",
                   help="write a Chrome-trace JSON of the run")
    p.add_argument("--metrics-out", dest="metrics_out",
                   help="write the metrics snapshot (.json or .csv)")
    p.add_argument("--report-out", dest="report_out",
                   help="write the structured RunReport JSON")


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("fault injection (seeded, deterministic)")
    g.add_argument("--fault-seed", type=int, default=0, dest="fault_seed",
                   help="seed of the fault decision stream")
    g.add_argument("--drop-rate", type=float, default=0.0, dest="drop_rate",
                   help="probability a data message is dropped in flight")
    g.add_argument("--dup-rate", type=float, default=0.0, dest="dup_rate",
                   help="probability a message is delivered twice")
    g.add_argument("--corrupt-rate", type=float, default=0.0,
                   dest="corrupt_rate",
                   help="probability a payload is corrupted in flight")
    g.add_argument("--delay-rate", type=float, default=0.0, dest="delay_rate",
                   help="probability a message gets extra latency")
    g.add_argument("--crash-rank", action="append", dest="crash_rank",
                   metavar="RANK:STEP",
                   help="crash RANK at scheduler step STEP (repeatable)")
    g.add_argument("--straggler", action="append", dest="straggler",
                   metavar="RANK:FACTOR",
                   help="scale RANK's compute time by FACTOR (repeatable)")
    g.add_argument("--reliable", action="store_true",
                   help="route redistribution through the reliable "
                        "transport (acks + retransmits + dedup)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and machine information")

    p_pack = sub.add_parser("pack", help="run one simulated PACK")
    _add_workload_args(p_pack)
    _add_observability_args(p_pack)
    _add_fault_args(p_pack)
    p_pack.add_argument("--redistribute", choices=("selected", "whole"))
    p_pack.add_argument("--phases", action="store_true", help="print all phases")

    p_unpack = sub.add_parser("unpack", help="run one simulated UNPACK")
    _add_workload_args(p_unpack)
    _add_observability_args(p_unpack)
    _add_fault_args(p_unpack)

    p_chaos = sub.add_parser(
        "chaos",
        help="seed x drop-rate fault matrix; every cell must stay "
             "oracle-correct under the reliable transport",
    )
    p_chaos.add_argument("--n", type=int, default=4096, help="1-D array size")
    p_chaos.add_argument("--procs", type=int, default=8, help="processor count")
    p_chaos.add_argument("--density", type=float, default=0.5)
    p_chaos.add_argument("--scheme", default="cms", help="PACK scheme")
    p_chaos.add_argument("--machine", default="cm5",
                         choices=("cm5", "cluster", "ideal"))
    p_chaos.add_argument("--seed", type=int, default=0, help="workload seed")
    p_chaos.add_argument("--fault-seed", type=int, default=0, dest="fault_seed")
    p_chaos.add_argument("--seeds", type=int, default=3,
                         help="fault seeds per drop rate")
    p_chaos.add_argument("--rates", default="0.01,0.05,0.1",
                         help="comma-separated drop rates")
    p_chaos.add_argument("--dup-rate", type=float, default=0.02, dest="dup_rate")
    p_chaos.add_argument("--corrupt-rate", type=float, default=0.02,
                         dest="corrupt_rate")
    p_chaos.add_argument("--backend", default="sim", choices=("sim", "mp"),
                         help="'sim' injects simulated message faults; "
                              "'mp' injects real process faults (SIGKILL/"
                              "SIGSTOP/poison) into a supervised gang and "
                              "asserts bit-identical recovery")
    p_chaos.add_argument("--kills", type=int, default=1,
                         help="real faults per seed (mp backend)")
    p_chaos.add_argument("--kill-kinds", default="kill", dest="kill_kinds",
                         help="comma-separated mp fault kinds drawn per "
                              "seed: kill,stop,delay,poison")
    p_chaos.add_argument("--timeout", type=float, default=120.0,
                         help="wall-clock budget per supervised op (mp)")

    p_trace = sub.add_parser(
        "trace", help="run a workload and emit a Chrome-trace JSON"
    )
    _add_workload_args(p_trace)
    p_trace.add_argument("--op", default="pack",
                         choices=("pack", "unpack", "ranking"))
    p_trace.add_argument("--out", default="repro.trace.json",
                         help="output trace file (Chrome trace_event JSON)")

    p_metrics = sub.add_parser(
        "metrics", help="run a workload and print/export the metrics snapshot"
    )
    _add_workload_args(p_metrics)
    p_metrics.add_argument("--op", default="pack",
                           choices=("pack", "unpack", "ranking"))
    p_metrics.add_argument("--out", help="write snapshot (.json or .csv)")
    p_metrics.add_argument("--report-out", dest="report_out",
                           help="also write the structured RunReport JSON")

    p_plan = sub.add_parser(
        "plan",
        help="compile a workload's plan, print its summary, optionally "
             "export it as JSON or re-run to demonstrate the cache hit",
    )
    p_plan.add_argument("--op", default="pack",
                        choices=("pack", "unpack", "ranking"))
    _add_workload_args(p_plan)
    p_plan.add_argument("--out", help="write the serialized plan JSON")
    p_plan.add_argument("--repeat", action="store_true",
                        help="run the workload a second time and assert a "
                             "cache hit with bit-identical simulated time")
    p_plan.add_argument("--plan-cache-file", dest="plan_cache_file",
                        help="load the plan cache from this JSON file before "
                             "the run (if it exists) and save it back after "
                             "— shared with `repro serve --plan-cache-file`")

    p_serve = sub.add_parser(
        "serve",
        help="async batching PACK/UNPACK service: newline-delimited JSON "
             "over TCP with request coalescing, admission control and "
             "graceful SIGTERM drain",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral; the bound port is "
                              "printed on the 'serving on' line)")
    p_serve.add_argument("--backend", default="sim",
                         choices=("sim", "mp", "supervised"),
                         help="execution backend shared by all requests")
    p_serve.add_argument("--max-delay-ms", type=float, default=2.0,
                         dest="max_delay_ms",
                         help="coalescing window: how long a request may "
                              "wait for compatible peers (default 2 ms)")
    p_serve.add_argument("--max-batch", type=int, default=8, dest="max_batch",
                         help="max requests per coalesced gang (1 = solo)")
    p_serve.add_argument("--max-queue", type=int, default=256,
                         dest="max_queue",
                         help="admission bound on in-flight requests; past "
                              "it requests are shed with 'overloaded'")
    p_serve.add_argument("--max-inflight", type=int, default=2,
                         dest="max_inflight",
                         help="concurrent backend executions (thread pool "
                              "width)")
    p_serve.add_argument("--plan-cache-capacity", type=int, default=128,
                         dest="plan_cache_capacity")
    p_serve.add_argument("--plan-cache-file", dest="plan_cache_file",
                         help="warm the shared plan cache from this file at "
                              "start and persist it on drain")
    p_serve.add_argument("--metrics-out", dest="metrics_out",
                         help="write the serve metrics snapshot JSON on "
                              "drain")
    p_serve.add_argument("--warm", type=int,
                         help="pre-fork a gang of this many ranks "
                              "(supervised backend) before accepting load")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-op watchdog for the supervised backend")
    p_serve.add_argument("--transport", default=None,
                         choices=("queue", "ring"),
                         help="mp/supervised message transport")

    p_loadgen = sub.add_parser(
        "loadgen",
        help="seeded open-loop load generator against a running "
             "`repro serve` (Poisson arrivals, pipelined connections)",
    )
    p_loadgen.add_argument("--host", default="127.0.0.1")
    p_loadgen.add_argument("--port", type=int, required=True)
    p_loadgen.add_argument("--rate", type=float, default=50.0,
                           help="offered load in requests/second")
    p_loadgen.add_argument("--duration", type=float, default=2.0,
                           help="seconds of offered arrivals")
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument("--n", type=int, default=256,
                           help="global 1-D problem size")
    p_loadgen.add_argument("--procs", type=int, default=2)
    p_loadgen.add_argument("--density", type=float, default=0.3)
    p_loadgen.add_argument("--masks", type=int, default=4,
                           help="mask pool size (coalescing needs repeats)")
    p_loadgen.add_argument("--ops", default="pack",
                           help="comma-separated op mix: pack,unpack,ranking")
    p_loadgen.add_argument("--scheme", default="cms")
    p_loadgen.add_argument("--connections", type=int, default=4)
    p_loadgen.add_argument("--timeout", type=float, default=30.0,
                           help="per-request response deadline")
    p_loadgen.add_argument("--validate", action="store_true",
                           help="ask the server to validate against the "
                                "serial reference")
    p_loadgen.add_argument("--json-out", dest="json_out",
                           help="write the full report JSON")

    p_conform = sub.add_parser(
        "conform",
        help="differential conformance fuzz vs the serial reference "
             "(seeded; failures are shrunk to minimal repros)",
    )
    p_conform.add_argument("--seed", type=int, default=4,
                           help="seed of the case-draw stream")
    p_conform.add_argument("--cases", type=int, default=200,
                           help="number of random cases to run")
    p_conform.add_argument("--max-shrink", type=int, default=200,
                           dest="max_shrink",
                           help="oracle evaluations the shrinker may spend "
                                "per failure")
    p_conform.add_argument("--corpus",
                           help="also replay every *.json regression corpus "
                                "entry in this directory")
    p_conform.add_argument("--backend", default="sim", choices=("sim", "mp"),
                           help="execution backend for the corpus replay "
                                "(the fuzz loop always runs on 'sim')")
    p_conform.add_argument("--cross-check", action="store_true",
                           dest="cross_check",
                           help="replay the corpus on every backend "
                                "(sim and mp) instead of just --backend")
    p_conform.add_argument("--plan-cache", default="off",
                           choices=("on", "off"), dest="plan_cache",
                           help="replay the corpus twice through one shared "
                                "plan cache: pass 1 compiles, pass 2 must "
                                "hit (exit 1 on zero hits or any oracle "
                                "failure)")

    p_profile = sub.add_parser(
        "profile",
        help="cross-rank runtime cost attribution: phase table, per-rank "
             "trace lanes and P×P communication matrix on either backend",
    )
    p_profile.add_argument("op", nargs="?", default="pack",
                           choices=("pack", "unpack", "ranking"),
                           help="operation to profile (default: pack)")
    _add_workload_args(p_profile)
    p_profile.add_argument("--timeout", type=float, default=300.0,
                           help="wall-clock budget per mp gang in seconds")
    p_profile.add_argument("--transport", default=None,
                           choices=("queue", "ring"),
                           help="mp message transport (default: "
                                "$REPRO_MP_TRANSPORT, then ring)")
    p_profile.add_argument("--codec", default=None,
                           choices=("auto", "sss", "cms", "pickle"),
                           help="ring wire codec mode (default: "
                                "$REPRO_WIRE_CODEC, then auto)")
    p_profile.add_argument("--ring-capacity", type=int, default=8192,
                           dest="ring_capacity",
                           help="per-rank span ring-buffer capacity (mp)")
    p_profile.add_argument("--trace-out", dest="trace_out",
                           help="write the merged per-rank Chrome trace "
                                "(one lane per rank + a gang lane)")
    p_profile.add_argument("--matrix-out", dest="matrix_out",
                           help="write the P×P msgs/bytes matrix JSON")
    p_profile.add_argument("--report-out", dest="report_out",
                           help="write the full RunProfile JSON")

    p_runtime = sub.add_parser(
        "runtime",
        help="execution-backend smoke test: SPMD primitives plus one "
             "PACK/UNPACK round against the serial oracle",
    )
    p_runtime.add_argument("--backend", default="mp",
                           choices=("sim", "mp", "supervised"),
                           help="backend to smoke-test (default: mp)")
    p_runtime.add_argument("--procs", type=int, default=4,
                           help="number of ranks (OS processes under mp)")
    p_runtime.add_argument("--n", type=int, default=4096,
                           help="1-D array size for the PACK/UNPACK round")
    p_runtime.add_argument("--density", type=float, default=0.5)
    p_runtime.add_argument("--seed", type=int, default=0)
    p_runtime.add_argument("--quick", action="store_true",
                           help="small workload (n=512) for CI smoke")
    p_runtime.add_argument("--timeout", type=float, default=120.0,
                           help="wall-clock budget per mp gang in seconds")
    p_runtime.add_argument("--transport", default=None,
                           choices=("queue", "ring"),
                           help="mp message transport (default: "
                                "$REPRO_MP_TRANSPORT, then ring)")
    p_runtime.add_argument("--codec", default=None,
                           choices=("auto", "sss", "cms", "pickle"),
                           help="ring wire codec mode (default: "
                                "$REPRO_WIRE_CODEC, then auto)")

    p_exp = sub.add_parser("experiments", help="regenerate paper artifacts")
    p_exp.add_argument("--metrics-out", dest="metrics_out",
                       help="snapshot the process-wide metrics registry "
                            "after the experiments finish (place before "
                            "the experiment names)")
    p_exp.add_argument("rest", nargs=argparse.REMAINDER)

    from .runtime.base import BackendError

    args = parser.parse_args(argv)
    try:
        return _dispatch(args, parser)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, BackendError) as exc:
        # Library-level validation (bad dist/grid/block geometry, paper
        # divisibility, simulator-only feature on another backend): a
        # user-input problem, not a crash — one line.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args, parser) -> int:
    if args.command == "info":
        return cmd_info(args)
    if args.command == "pack":
        return cmd_pack(args)
    if args.command == "unpack":
        return cmd_unpack(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "plan":
        return cmd_plan(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "loadgen":
        return cmd_loadgen(args)
    if args.command == "conform":
        return cmd_conform(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "runtime":
        return cmd_runtime(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "metrics":
        return cmd_metrics(args)
    if args.command == "experiments":
        from .experiments.__main__ import main as exp_main

        if args.metrics_out:
            from .obs import enable_global_metrics, disable_global_metrics
            from .obs.exporters import write_metrics

            registry = enable_global_metrics()
            try:
                rc = exp_main(args.rest)
            finally:
                disable_global_metrics()
            write_metrics(args.metrics_out, registry)
            print(f"[metrics -> {args.metrics_out}]")
            return rc
        return exp_main(args.rest)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":
    sys.exit(main())
