"""Analysis: the Section 6.4 cost model in closed form, crossover (beta)
computation, and paper-style report formatting.

:mod:`repro.analysis.model` predicts, from a mask and a layout alone
(no simulation), exactly the local-computation time the simulator will
charge — used both for fast Table I generation and as a consistency oracle
for the simulator's charges.
"""

from .calibration import fit_local_cost_model
from .charts import ascii_chart
from .crossover import beta1_table, beta2_table, find_crossover
from .memory import MemoryFootprint, pack_memory_words, ranking_working_words
from .model import WorkloadQuantities, predict_pack_local_seconds, workload_quantities
from .predictor import PackPrediction, predict_pack_seconds, predict_prs_seconds
from .reporting import format_series, format_table

__all__ = [
    "MemoryFootprint",
    "PackPrediction",
    "ascii_chart",
    "fit_local_cost_model",
    "pack_memory_words",
    "ranking_working_words",
    "WorkloadQuantities",
    "beta1_table",
    "beta2_table",
    "find_crossover",
    "format_series",
    "format_table",
    "predict_pack_local_seconds",
    "predict_pack_seconds",
    "predict_prs_seconds",
    "workload_quantities",
]
