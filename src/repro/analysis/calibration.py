"""Automated re-calibration of the local unit costs against Table I.

`docs/cost_model.md` describes how the :class:`LocalCostModel` defaults
were fixed against the published beta1 crossovers.  This module makes
that procedure executable and repeatable: given a target table of beta1
values, grid-search the unit-cost space and score each candidate by
log2 distance between its computed crossovers and the targets (one power
of two off = distance 1; infinities match infinities at distance 0 and
anything finite at a capped penalty).

This is deliberately a *coarse* fit — the point is that one global
parameter triple reproduces the whole table's shape, not that each cell
is matched (which would be overfitting a 30-year-old machine's cache
behaviour).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.schemes import Scheme
from ..machine.spec import CM5, LocalCostModel, MachineSpec
from .crossover import find_crossover

__all__ = ["CalibrationResult", "beta_distance", "fit_local_cost_model", "PAPER_TARGETS_1D"]

#: Published Table I, 1-D: local size -> betas for 10/30/50/70/90% + HALF.
PAPER_TARGETS_1D: dict[int, Sequence[float]] = {
    1024: (64, 8, 8, 4, 4, 4),
    8192: (2048, 8, 8, 4, 4, 4),
}

_KINDS = (0.1, 0.3, 0.5, 0.7, 0.9, "half")
_INF_PENALTY = 3.0


@dataclass
class CalibrationResult:
    """Outcome of a grid search."""

    local: LocalCostModel
    score: float
    table: dict[tuple, float]

    def spec(self, base: MachineSpec = CM5) -> MachineSpec:
        return base.with_(local=self.local)


def beta_distance(computed: float, target: float) -> float:
    """log2-space distance between two crossover block sizes."""
    comp_inf = math.isinf(computed)
    targ_inf = math.isinf(target)
    if comp_inf and targ_inf:
        return 0.0
    if comp_inf or targ_inf:
        return _INF_PENALTY
    return abs(math.log2(max(computed, 1)) - math.log2(max(target, 1)))


def score_model(
    local: LocalCostModel,
    targets: Mapping[int, Sequence[float]],
    procs: int = 16,
    base: MachineSpec = CM5,
) -> tuple[float, dict]:
    """Mean log2 distance of a candidate's beta1 table to the targets."""
    spec = base.with_(local=local)
    total = 0.0
    n = 0
    table: dict[tuple, float] = {}
    for local_size, betas in targets.items():
        shape = (local_size * procs,)
        for kind, target in zip(_KINDS, betas):
            got = find_crossover(shape, (procs,), kind, Scheme.SSS, Scheme.CSS, spec)
            table[(shape, kind)] = got
            total += beta_distance(got, float(target))
            n += 1
    return total / max(n, 1), table


def fit_local_cost_model(
    targets: Mapping[int, Sequence[float]] | None = None,
    rand_grid: Sequence[float] = (1.0, 1.5, 2.0, 3.0),
    slice_grid: Sequence[float] = (3.0, 5.0, 8.0),
    seg_grid: Sequence[float] = (3.0,),
    base: MachineSpec = CM5,
) -> CalibrationResult:
    """Coarse grid search over (rand, slice_overhead, seg).

    ``seq`` and ``vec`` stay at 1.0 — only ratios matter, and those two
    anchor the scale.  Returns the best-scoring model; ties break toward
    the shipped defaults.
    """
    if targets is None:
        targets = PAPER_TARGETS_1D
    default = LocalCostModel()
    best: CalibrationResult | None = None
    for rand in rand_grid:
        for slice_overhead in slice_grid:
            for seg in seg_grid:
                cand = LocalCostModel(
                    seq=1.0, rand=rand, vec=1.0, seg=seg,
                    slice_overhead=slice_overhead,
                )
                score, table = score_model(cand, targets, base=base)
                is_default = (
                    rand == default.rand
                    and slice_overhead == default.slice_overhead
                    and seg == default.seg
                )
                if (
                    best is None
                    or score < best.score - 1e-12
                    or (abs(score - best.score) <= 1e-12 and is_default)
                ):
                    best = CalibrationResult(local=cand, score=score, table=table)
    assert best is not None
    return best
