"""Monospace table / series formatting for the experiment reports.

The experiments print rows shaped like the paper's tables and figure
series so EXPERIMENTS.md can place paper values and measured values side
by side.  Everything here is plain text — no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_metrics", "fmt_ms", "fmt_value"]


def fmt_ms(seconds: float) -> str:
    """Milliseconds with paper-style two decimals."""
    return f"{seconds * 1e3:.2f}"


def fmt_value(v: Any) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if math.isinf(v):
            return "inf"
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return f"{v:.2f}"
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Align a simple monospace table."""
    cells = [[fmt_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for j, c in enumerate(row):
            widths[j] = max(widths[j], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(widths[j]) for j, c in enumerate(row)))
    return "\n".join(lines)


def format_metrics(snapshot: Mapping[str, Mapping[str, Any]],
                   title: str | None = None) -> str:
    """Render a :meth:`repro.obs.MetricsRegistry.snapshot` as a table.

    Counters and gauges take one row; histograms show count / mean /
    min / max (bucket detail stays in the JSON/CSV exports).
    """
    rows: list[list[Any]] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry["type"] in ("counter", "gauge"):
            rows.append([name, entry["type"], entry["value"], None, None, None])
        else:
            rows.append([
                name, "histogram", entry["count"], entry["mean"],
                entry["min"], entry["max"],
            ])
    return format_table(
        ["metric", "type", "count/value", "mean", "min", "max"], rows, title=title
    )


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[Any],
    series: Mapping[str, Sequence[float]],
    unit: str = "ms",
) -> str:
    """Print figure data as one row per x with one column per curve."""
    headers = [x_label] + [f"{name} ({unit})" for name in series]
    rows = []
    for i, x in enumerate(xs):
        row: list[Any] = [x]
        for name in series:
            v = series[name][i]
            if v is None:
                row.append(None)
            elif unit == "ms":
                row.append(fmt_ms(v))
            else:
                row.append(v)
        rows.append(row)
    return format_table(headers, rows, title=title)
