"""Terminal line charts for the figure experiments.

The paper's artifacts are *figures*; the experiment drivers print their
data as tables and, through this module, render them as ASCII charts so
the curve shapes (who is flattest, where curves cross, how steeply
everything falls with the block size) are visible at a glance in any
terminal — no plotting dependencies.

Charts place one glyph per series per column; the x axis is the category
sequence (block sizes), the y axis linear or log10.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

_GLYPHS = "ox+*#@%&"


def ascii_chart(
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    logy: bool = True,
    y_label: str = "ms",
    title: str | None = None,
) -> str:
    """Render named series over categorical x values as an ASCII chart.

    ``series`` values are in seconds and displayed in milliseconds.
    ``None`` points are skipped.  With ``logy`` the y axis is log10 —
    right for the paper's curves, which span decades across block sizes.
    """
    names = list(series)
    values = [
        v * 1e3
        for vs in series.values()
        for v in vs
        if v is not None and v > 0
    ]
    if not values or not xs:
        return "(no data)"
    lo, hi = min(values), max(values)
    if logy:
        lo_t, hi_t = math.log10(lo), math.log10(hi)
    else:
        lo_t, hi_t = lo, hi
    if hi_t - lo_t < 1e-12:
        hi_t = lo_t + 1.0

    def row_of(v_ms: float) -> int:
        t = math.log10(v_ms) if logy else v_ms
        frac = (t - lo_t) / (hi_t - lo_t)
        return min(height - 1, max(0, round(frac * (height - 1))))

    ncols = len(xs)
    col_w = max(1, width // max(ncols, 1))
    grid_w = col_w * ncols
    grid = [[" "] * grid_w for _ in range(height)]
    for si, name in enumerate(names):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        for ci, v in enumerate(series[name]):
            if v is None or v <= 0:
                continue
            r = row_of(v * 1e3)
            c = ci * col_w + col_w // 2
            cell = grid[height - 1 - r][c]
            grid[height - 1 - r][c] = "!" if cell not in (" ", glyph) else glyph

    lines = []
    if title:
        lines.append(title)
    top = f"{hi:.3g}" if not logy else f"{10 ** hi_t:.3g}"
    bot = f"{lo:.3g}"
    axis_w = max(len(top), len(bot), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = top
        elif i == height - 1:
            label = bot
        elif i == height // 2:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{axis_w}} |" + "".join(row))
    lines.append(" " * axis_w + " +" + "-" * grid_w)
    x_cells = []
    for x in xs:
        s = str(x)
        x_cells.append(s[: col_w - 1].center(col_w) if col_w > 1 else s[:1])
    lines.append(" " * axis_w + "  " + "".join(x_cells))
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * axis_w + "  " + legend + ("   (log y)" if logy else ""))
    return "\n".join(lines)
