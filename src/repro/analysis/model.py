"""Closed-form Section 6.4 model: predict local-computation time without
running the simulator.

Given the global mask and the layout, :func:`workload_quantities` computes
the exact per-processor quantities of the paper's model (``L``, ``C``,
``E_i``, ``E_a``, ``Gs_i``, ``Gr_i``, second-scan lengths), and
:func:`predict_pack_local_seconds` combines them with the
:class:`~repro.machine.spec.LocalCostModel` unit costs into the same
charges the SPMD programs make — so prediction and simulation agree to the
floating-point digit (a property the test suite asserts).  This gives the
experiments a fast path for coarse sweeps (Table I scans hundreds of
configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.costs import StepCosts
from ..core.ranking import slice_scan_lengths
from ..core.schemes import Scheme
from ..hpf.grid import GridLayout
from ..hpf.vector import VectorLayout
from ..machine.spec import MachineSpec
from ..serial.reference import mask_ranks

__all__ = ["WorkloadQuantities", "workload_quantities", "predict_pack_local_seconds"]


@dataclass
class WorkloadQuantities:
    """Per-rank workload quantities (arrays indexed by rank)."""

    L: int
    C: int
    e_i: np.ndarray
    e_a: np.ndarray
    gs: np.ndarray
    gr: np.ndarray
    scan2_early: np.ndarray
    scan2_full: np.ndarray
    size: int

    def max_e(self) -> int:
        return int(self.e_i.max()) if self.e_i.size else 0


def workload_quantities(
    mask: np.ndarray, layout: GridLayout, result_block: int | None = None
) -> WorkloadQuantities:
    """Exact Section 6.4 quantities for every rank, computed host-side."""
    mask = np.asarray(mask, dtype=bool)
    P = layout.nprocs
    size = int(mask.sum())
    vec = (
        VectorLayout.block(size, P)
        if result_block is None
        else VectorLayout.cyclic(size, P, w=result_block)
    )
    ranks_global = mask_ranks(mask)
    mask_blocks = layout.scatter(mask)
    rank_blocks = layout.scatter(ranks_global)
    w0 = layout.dims[0].w

    L = layout.local_size
    C = L // w0
    e_i = np.zeros(P, dtype=np.int64)
    gs = np.zeros(P, dtype=np.int64)
    gr = np.zeros(P, dtype=np.int64)
    e_a = np.array([vec.local_size(r) for r in range(P)], dtype=np.int64)
    scan2_early = np.zeros(P, dtype=np.int64)
    scan2_full = np.zeros(P, dtype=np.int64)

    for r in range(P):
        mb = mask_blocks[r]
        flat = mb.ravel()
        positions = np.flatnonzero(flat)
        e_i[r] = positions.size
        view = mb.reshape(mb.shape[:-1] + (layout.dims[0].t, w0))
        scan2_early[r] = int(slice_scan_lengths(view, True).sum())
        scan2_full[r] = int(slice_scan_lengths(view, False).sum())
        if positions.size:
            elem_ranks = rank_blocks[r].ravel()[positions]
            dests = vec.owners(elem_ranks)
            slice_ids = positions // w0
            brk = np.ones(positions.size, dtype=bool)
            if positions.size > 1:
                brk[1:] = (np.diff(slice_ids) != 0) | (np.diff(dests) != 0)
            seg_starts = np.flatnonzero(brk)
            gs[r] = seg_starts.size
            seg_dest = dests[seg_starts]
            np.add.at(gr, seg_dest, 1)
    return WorkloadQuantities(
        L=L,
        C=C,
        e_i=e_i,
        e_a=e_a,
        gs=gs,
        gr=gr,
        scan2_early=scan2_early,
        scan2_full=scan2_full,
        size=size,
    )


def _ranking_vec_elements(layout: GridLayout) -> tuple[int, int]:
    """(intermediate-step elements, final-collapse elements) — the vector
    slots touched by the shared ranking substeps, identical on all ranks."""
    d = layout.d
    # |PS_i| = (prod_{k>i} L_k) * T_i
    ps_size = []
    for i in range(d):
        s = layout.dims[i].t
        for k in range(i + 1, d):
            s *= layout.dims[k].l
        ps_size.append(s)
    intermediate = 0
    for i in range(d):
        if i < d - 1:
            intermediate += ps_size[i] + ps_size[i + 1]
        else:
            intermediate += ps_size[i]
    collapse = sum(ps_size[i] for i in range(d - 1)) + ps_size[0]
    return intermediate, collapse


def predict_pack_local_seconds(
    mask: np.ndarray,
    layout: GridLayout,
    scheme: Scheme,
    spec: MachineSpec,
    early_exit_scan: bool = True,
    result_block: int | None = None,
    per_rank: bool = False,
):
    """Predicted PACK local-computation time (the paper's measurement:
    everything except PRS and the many-to-many exchange).

    Replicates the simulator's charges exactly; returns the max over ranks
    in seconds (or the full per-rank vector with ``per_rank=True``).
    """
    scheme = Scheme.parse(scheme)
    q = workload_quantities(mask, layout, result_block)
    costs = StepCosts(local=spec.local, scheme=scheme, d=layout.d)
    intermediate, collapse = _ranking_vec_elements(layout)

    P = layout.nprocs
    out = np.zeros(P)
    for r in range(P):
        ops = 0.0
        ops += costs.initial_scan(q.L, int(q.e_i[r]))
        ops += costs.counter_copy(q.C)
        ops += costs.intermediate_local(intermediate)
        ops += costs.final_collapse(collapse)
        gs_all = int(q.gs[r])
        ops += costs.final_rank_elements(q.C, int(q.e_i[r]), gs_all)
        if not scheme.stores_records:
            scan2 = int(q.scan2_early[r] if early_exit_scan else q.scan2_full[r])
            ops += costs.second_scan(q.C, scan2)
        gs = gs_all if scheme.uses_segments else 0
        gr = int(q.gr[r]) if scheme.uses_segments else 0
        ops += costs.compose(int(q.e_i[r]), gs)
        ops += costs.decompose(int(q.e_a[r]), gr)
        out[r] = spec.work_time(ops)
    return out if per_rank else float(out.max())
