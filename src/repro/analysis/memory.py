"""Per-processor memory footprint of the PACK pipeline (Section 6.1).

The storage schemes are named for what they *store*: the simple storage
scheme keeps ``d + 3`` bookkeeping items per selected element; the compact
schemes keep only the counter array ``PS_c`` (one word per slice).  The
paper argues this verbally; this module makes the footprint computable, so
a runtime on a memory-tight node can pick a scheme by space as well as
time.

All quantities are in words.  The ranking working arrays are common to
every scheme: ``2d`` arrays ``PS_i``/``RS_i`` with
``|PS_i| = (prod_{k>i} L_k) * T_i``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.schemes import Scheme
from ..hpf.grid import GridLayout

__all__ = ["MemoryFootprint", "ranking_working_words", "pack_memory_words"]


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-processor words used by one PACK, beyond the input blocks."""

    working: int  # the PS_i / RS_i ranking arrays (all schemes)
    bookkeeping: int  # scheme storage: records (SSS) or PS_c (CSS/CMS)
    send_buffers: int  # outgoing message words
    recv_buffers: int  # incoming message words + result block

    @property
    def total(self) -> int:
        return self.working + self.bookkeeping + self.send_buffers + self.recv_buffers


def ranking_working_words(layout: GridLayout) -> int:
    """Words in the 2d ranking working arrays (PS_i and RS_i, all dims)."""
    d = layout.d
    total = 0
    for i in range(d):
        size = layout.dims[i].t
        for k in range(i + 1, d):
            size *= layout.dims[k].l
        total += 2 * size  # PS_i and RS_i
    return total


def pack_memory_words(
    layout: GridLayout,
    scheme: Scheme | str,
    e_i: int,
    e_a: int,
    gs_i: int = 0,
    gr_i: int = 0,
) -> MemoryFootprint:
    """Footprint for a processor holding ``e_i`` selected elements that
    will receive ``e_a`` (use :func:`repro.analysis.model.workload_quantities`
    for exact per-rank values)."""
    scheme = Scheme.parse(scheme)
    d = layout.d
    w0 = layout.dims[0].w
    c = layout.local_size // w0

    working = ranking_working_words(layout)
    if scheme.stores_records:
        bookkeeping = (d + 3) * e_i
    else:
        bookkeeping = c  # PS_c counter array

    if scheme.uses_segments:
        send = e_i + 2 * gs_i
        recv = e_a + 2 * gr_i + e_a  # message + result block
    else:
        send = 2 * e_i
        recv = 2 * e_a + e_a
    return MemoryFootprint(
        working=working, bookkeeping=bookkeeping,
        send_buffers=send, recv_buffers=recv,
    )
