"""Crossover block sizes beta1 / beta2 (paper Table I and Section 7).

``beta1`` is the smallest block size at which the compact storage scheme's
local computation beats the simple storage scheme's; ``beta2`` the smallest
at which the compact *message* scheme beats the compact storage scheme.
The paper reports beta1 for mask densities 10-90% plus the structured mask
and notes that both betas always exceed 1 (SSS is unbeatable for cyclic
distributions) and fall as density rises.

Computation uses the closed-form model of :mod:`repro.analysis.model`
(which matches the simulator's charges exactly), scanning the power-of-two
block sizes the paper sweeps.  ``float('inf')`` is returned when the
compact scheme never wins — the paper prints this as infinity for 2-D 10%
masks.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.schemes import Scheme
from ..hpf.grid import GridLayout
from ..machine.spec import CM5, MachineSpec
from ..workloads.grids import block_size_sweep
from ..workloads.masks import make_mask
from .model import predict_pack_local_seconds

__all__ = ["find_crossover", "beta1_table", "beta2_table"]


def find_crossover(
    shape,
    grid,
    mask_kind,
    scheme_a: Scheme,
    scheme_b: Scheme,
    spec: MachineSpec = CM5,
    seed: int = 0,
) -> float:
    """Smallest swept block size where ``scheme_b``'s local time <=
    ``scheme_a``'s, or ``inf`` if none.

    2-D sweeps use the same block size on both dimensions, matching the
    paper's experimental constraint.
    """
    mask = make_mask(shape, mask_kind, seed=seed)
    d = len(shape)
    for w in block_size_sweep(shape[-1], grid[-1]):
        block = tuple([w] * d)
        if any(n % (p * w) != 0 for n, p in zip(shape, grid)):
            continue
        layout = GridLayout.create(shape, grid, block)
        t_a = predict_pack_local_seconds(mask, layout, scheme_a, spec)
        t_b = predict_pack_local_seconds(mask, layout, scheme_b, spec)
        if t_b <= t_a:
            return float(w)
    return math.inf


def beta1_table(
    shapes,
    grid,
    mask_kinds,
    spec: MachineSpec = CM5,
    seed: int = 0,
) -> dict[tuple, float]:
    """Table I: SSS -> CSS crossovers, keyed by (shape, mask_kind)."""
    out = {}
    for shape in shapes:
        for mk in mask_kinds:
            out[(tuple(shape), mk)] = find_crossover(
                shape, grid, mk, Scheme.SSS, Scheme.CSS, spec, seed
            )
    return out


def beta2_table(
    shapes,
    grid,
    mask_kinds,
    spec: MachineSpec = CM5,
    seed: int = 0,
) -> dict[tuple, float]:
    """CSS -> CMS crossovers (the paper's beta2), keyed like beta1."""
    out = {}
    for shape in shapes:
        for mk in mask_kinds:
            out[(tuple(shape), mk)] = find_crossover(
                shape, grid, mk, Scheme.CSS, Scheme.CMS, spec, seed
            )
    return out
