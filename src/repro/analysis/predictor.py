"""End-to-end PACK time prediction (local + PRS + many-to-many).

Section 6.4 models only local computation.  This module extends the model
to the two communication stages so a compiler runtime can predict the
*total* PACK cost of a candidate distribution before executing it:

* **PRS** — per ranking dimension ``i``, one prefix-reduction-sum over the
  dimension's processor group on a vector of ``(prod_{k>i} L_k) * T_i``
  entries; algorithm resolution mirrors
  :func:`repro.collectives.prefix.choose_prs_algorithm` and the cost uses
  its closed-form estimates.
* **many-to-many** — the linear permutation schedule's elapsed time is
  bounded by the busiest processor: its sends plus the start-ups of the
  rounds it participates in, ``sum_d (tau + mu * w_d)`` over its non-empty
  destinations, plus the count-detection collective.

Predictions are *estimates* (the simulator resolves waiting and overlap
exactly; the estimate ignores idle time), so the test suite asserts
agreement within a factor rather than to the digit — unlike the local
model in :mod:`repro.analysis.model`, which is exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.prefix import estimate_prs_seconds
from ..core.schemes import Scheme
from ..hpf.grid import GridLayout
from ..hpf.vector import VectorLayout
from ..machine.spec import MachineSpec
from ..serial.reference import mask_ranks
from .model import predict_pack_local_seconds, workload_quantities

__all__ = ["PackPrediction", "predict_pack_seconds", "predict_prs_seconds"]


@dataclass
class PackPrediction:
    """Predicted PACK cost decomposition, in seconds."""

    local: float
    prs: float
    m2m: float

    @property
    def total(self) -> float:
        return self.local + self.prs + self.m2m


def _resolve_prs(spec: MachineSpec, P: int, M: int, requested: str) -> str:
    """Mirror of choose_prs_algorithm without needing a Context."""
    if requested != "auto":
        return requested
    software = "direct" if (P <= 4 or M < P) else "split"
    if spec.has_control_network:
        if estimate_prs_seconds(spec, "ctrl", P, M) <= estimate_prs_seconds(
            spec, software, P, M
        ):
            return "ctrl"
    return software


def predict_prs_seconds(
    layout: GridLayout, spec: MachineSpec, prs: str = "auto"
) -> float:
    """Closed-form estimate of the ranking stage's PRS time."""
    d = layout.d
    total = 0.0
    for i in range(d):
        P_i = layout.dims[i].p
        if P_i <= 1:
            continue
        M = layout.dims[i].t
        for k in range(i + 1, d):
            M *= layout.dims[k].l
        algo = _resolve_prs(spec, P_i, M, prs)
        total += estimate_prs_seconds(spec, algo, P_i, M)
    return total


def predict_m2m_seconds(
    mask: np.ndarray,
    layout: GridLayout,
    scheme: Scheme,
    spec: MachineSpec,
    result_block: int | None = None,
) -> float:
    """Estimate of the redistribution exchange's elapsed time.

    Computes the exact per-(source, dest) word matrix from the mask, then
    charges the busiest rank's send time (with CMS segment headers where
    applicable) plus the count-detection step.
    """
    scheme = Scheme.parse(scheme)
    P = layout.nprocs
    size = int(np.count_nonzero(mask))
    vec = (
        VectorLayout.block(size, P)
        if result_block is None
        else VectorLayout.cyclic(size, P, w=result_block)
    )
    ranks_global = mask_ranks(mask)
    mask_blocks = layout.scatter(np.asarray(mask, dtype=bool))
    rank_blocks = layout.scatter(ranks_global)
    w0 = layout.dims[0].w

    busiest = 0.0
    for r in range(P):
        flat = mask_blocks[r].ravel()
        positions = np.flatnonzero(flat)
        t = 0.0
        if positions.size:
            elem_ranks = rank_blocks[r].ravel()[positions]
            dests = vec.owners(elem_ranks)
            slice_ids = positions // w0
            brk = np.ones(positions.size, dtype=bool)
            if positions.size > 1:
                brk[1:] = (np.diff(slice_ids) != 0) | (np.diff(dests) != 0)
            for dest in np.unique(dests):
                sel = dests == dest
                count = int(sel.sum())
                segs = int(brk[sel].sum())
                if scheme.uses_segments:
                    words = count + 2 * segs
                else:
                    words = 2 * count
                if dest != r:
                    t += spec.message_time(words)
        busiest = max(busiest, t)
    # Count detection: one control operation or a linear count round.
    if spec.has_control_network:
        busiest += spec.ctrl_time(P)
    else:
        busiest += (P - 1) * spec.message_time(1)
    return busiest


def predict_pack_seconds(
    mask: np.ndarray,
    layout: GridLayout,
    scheme: Scheme | str,
    spec: MachineSpec,
    prs: str = "auto",
    early_exit_scan: bool = True,
    result_block: int | None = None,
) -> PackPrediction:
    """Predict the full PACK cost decomposition for a candidate layout."""
    scheme = Scheme.parse(scheme)
    return PackPrediction(
        local=predict_pack_local_seconds(
            mask, layout, scheme, spec,
            early_exit_scan=early_exit_scan, result_block=result_block,
        ),
        prs=predict_prs_seconds(layout, spec, prs),
        m2m=predict_m2m_seconds(mask, layout, scheme, spec, result_block),
    )
