"""Per-run fault-injection state, consulted by the engine's hooks.

The engine calls exactly two methods on the hot paths:

* :meth:`FaultInjector.deliveries` from ``Machine._deliver`` — decides,
  for one point-to-point message, which copies actually arrive (none
  when dropped, two when duplicated), with what payload (possibly
  :class:`~repro.faults.plan.Corrupted`) and how much extra latency.
* :meth:`FaultInjector.should_crash` from ``Machine._step`` — counts
  the rank's generator resumptions and fires the plan's crash schedule.

Every decision consumes the seeded stream in simulation order, which is
what makes an injected run exactly as reproducible as a clean one.  All
injected events are counted into the run's
:class:`~repro.obs.registry.MetricsRegistry` (when present) under
``faults.*`` and mirrored as plain attributes for test assertions.
"""

from __future__ import annotations

import random
from typing import Any

from .plan import Corrupted, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Mutable per-run companion of one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan, nprocs: int, metrics=None):
        self.plan = plan
        self.nprocs = nprocs
        self.metrics = metrics
        self._rng = random.Random(plan.seed)
        self._steps = [0] * nprocs
        # Straggler lookup as a dense list: None when nobody straggles so
        # the Context.work hook stays a single attribute test.
        if plan.stragglers:
            self.work_scales: list[float] | None = [
                float(plan.stragglers.get(r, 1.0)) for r in range(nprocs)
            ]
        else:
            self.work_scales = None
        # Event tallies (mirrored into metrics when attached).
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.delayed = 0
        self.crashed: list[int] = []
        self.lost_to_crashed = 0

    # ------------------------------------------------------------- messages
    def _targets(self, tag: int, words: int) -> bool:
        if words < self.plan.min_words:
            return False
        tags = self.plan.target_tags
        return tags is None or tag in tags

    def deliveries(
        self, source: int, dest: int, tag: int, payload: Any, words: int
    ) -> list[tuple[Any, float, bool]]:
        """Fate of one message: the list of ``(payload, extra_delay,
        corrupted)`` copies to deposit (empty = dropped).  The
        ``corrupted`` flag lets the engine withhold transport-level acks
        for copies that will fail the receiver's checksum.

        The decision stream is consumed in a fixed field order (drop,
        then corrupt, then delay, then duplicate) regardless of which
        rates are zero, so enabling one fault kind does not reshuffle
        another kind's pattern.
        """
        plan = self.plan
        if not plan.faults_messages or not self._targets(tag, words):
            return [(payload, 0.0, False)]
        rng = self._rng
        drop = rng.random() < plan.drop_rate
        corrupt = rng.random() < plan.corrupt_rate
        delay = rng.random() < plan.delay_rate
        dup = rng.random() < plan.dup_rate
        if drop:
            self.dropped += 1
            self._count("faults.drops")
            return []
        if corrupt:
            self.corrupted += 1
            self._count("faults.corruptions")
            payload = Corrupted(payload)
        extra = 0.0
        if delay:
            self.delayed += 1
            self._count("faults.delays")
            extra = plan.delay_seconds
            if self.metrics is not None:
                self.metrics.observe("faults.delay_seconds", extra)
        copies = [(payload, extra, corrupt)]
        if dup:
            self.duplicated += 1
            self._count("faults.duplicates")
            copies.append((payload, extra, corrupt))
        return copies

    def drop_to_crashed(self) -> None:
        """Record a message addressed to an already-crashed rank."""
        self.lost_to_crashed += 1
        self._count("faults.msgs_to_crashed")

    # -------------------------------------------------------------- crashes
    def should_crash(self, rank: int) -> bool:
        """Called once per generator resumption of ``rank``; True when the
        plan schedules the crash at this step."""
        crash_step = self.plan.crash_at.get(rank)
        step = self._steps[rank]
        self._steps[rank] = step + 1
        if crash_step is not None and step >= crash_step:
            self.crashed.append(rank)
            self._count("faults.crashes")
            return True
        return False

    def steps_of(self, rank: int) -> int:
        return self._steps[rank]

    # -------------------------------------------------------------- helpers
    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def __repr__(self) -> str:
        return (
            f"FaultInjector({self.plan.describe()}, dropped={self.dropped}, "
            f"duplicated={self.duplicated}, corrupted={self.corrupted}, "
            f"crashed={self.crashed})"
        )
