"""Reliable transport over the simulated (and possibly faulty) network.

The simulator's native sends are at-most-once under a
:class:`~repro.faults.plan.FaultPlan`: a message may be dropped,
duplicated, corrupted or delayed.  This module layers the classic
recipe on top of the native ops to get effectively exactly-once
delivery:

* every payload travels in a ``("DATA", seq, crc, payload)`` packet —
  a per-destination **sequence number** and a **checksum** of the
  payload (two header words on the wire);
* every intact data copy is answered with an ``("ACK", seq)`` (one
  word) by the *receiving node's network interface* — the engine's
  ``auto_ack`` send option — not by the receiving program.  Acks are
  therefore generated even for duplicates, even while the receiver is
  busy elsewhere, and even after its program has finished (the classic
  "last ack" termination hazard of program-level acks cannot arise).
  Acks cross the same faulty network and may themselves be lost;
* the receiver suppresses payloads it has already delivered (the dedup
  that turns at-least-once into exactly-once);
* the sender retransmits on a **simulated-time timeout** (a
  :class:`~repro.machine.ops.Recv` with ``timeout=``), giving up with
  :class:`~repro.machine.errors.ReliabilityError` after a bounded
  number of attempts;
* corrupted packets never checksum correctly: the engine withholds the
  transport ack and the receiver discards them, so corruption
  degenerates to loss.

Timeouts in the simulator are conservative: the engine fires a timed
receive only when no rank can otherwise make progress, so a fault-free
run never retransmits and pays only the header/ack overhead (measured
by ``benchmarks/bench_faults.py``).

Two granularities are offered: :meth:`ReliableEndpoint.send` /
:meth:`ReliableEndpoint.recv` are stop-and-wait point-to-point
primitives for hand-written programs, and
:meth:`ReliableEndpoint.exchange` is a pipelined event loop that makes
a whole many-to-many round reliable (what PACK/UNPACK use — see
:func:`repro.machine.m2m.exchange`).

Endpoint state (sequence numbers, dedup sets) must persist across the
several exchanges one program performs, so endpoints are cached on the
rank's :attr:`Context.scratch <repro.machine.context.Context>` —
obtain them via :meth:`ReliableEndpoint.of`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Generator, Iterable, Mapping

import numpy as np

from ..machine.errors import ReliabilityError
from ..machine.ops import ANY, Recv, TIMEOUT
from .plan import Corrupted

__all__ = ["ReliabilityConfig", "ReliableEndpoint", "ReliabilityError", "checksum"]

#: Tag carrying all reliable-transport traffic (data and acks share it;
#: the packet kind field disambiguates).  Distinct from the m2m tags.
RELIABLE_TAG = 970

_DATA = "DATA"
_ACK = "ACK"


def checksum(payload: Any) -> int:
    """Deterministic 32-bit digest of a message payload.

    Covers the payload types the library sends: numpy arrays, scalars,
    strings, bytes, and (nested) tuples/lists/dicts thereof.  A
    :class:`Corrupted` wrapper digests to the complement of its
    original's digest, modeling the damaged words on the wire — the
    receiver's verification therefore always fails for it.
    """
    return _digest(payload) & 0xFFFFFFFF


def _digest(obj: Any) -> int:
    if isinstance(obj, Corrupted):
        return ~_digest(obj.original)
    if obj is None:
        return 0x9E3779B9
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        meta = f"{arr.dtype.str}{arr.shape}".encode()
        return zlib.crc32(arr.tobytes(), zlib.crc32(meta))
    if isinstance(obj, (bytes, bytearray)):
        return zlib.crc32(bytes(obj))
    if isinstance(obj, (bool, int, float, complex, str, np.generic)):
        return zlib.crc32(repr(obj).encode())
    if isinstance(obj, (tuple, list)):
        acc = zlib.crc32(b"seq")
        for item in obj:
            acc = zlib.crc32(str(_digest(item) & 0xFFFFFFFF).encode(), acc)
        return acc
    if isinstance(obj, dict):
        acc = zlib.crc32(b"map")
        for key in sorted(obj, key=repr):
            acc = zlib.crc32(repr(key).encode(), acc)
            acc = zlib.crc32(str(_digest(obj[key]) & 0xFFFFFFFF).encode(), acc)
        return acc
    return zlib.crc32(repr(obj).encode())


@dataclass(frozen=True)
class ReliabilityConfig:
    """Tunables of the reliable transport.

    Parameters
    ----------
    max_retries:
        retransmissions allowed per packet beyond the first attempt;
        exhausting them raises :class:`ReliabilityError` (the loss rate
        was not survivable, better loud than a silent deadlock).
    timeout:
        retransmit timeout in simulated seconds, or ``None`` to derive
        one per packet from the machine spec (a few round-trip times).
        Because the engine fires timeouts only when no rank can
        otherwise progress, the value shapes simulated-time cost under
        loss but can never cause a spurious retransmit.
    header_words:
        modeled wire cost of the (seq, crc) data header.
    ack_words:
        modeled wire cost of one ack.
    tag:
        message tag of all reliable traffic.
    """

    max_retries: int = 8
    timeout: float | None = None
    header_words: int = 2
    ack_words: int = 1
    tag: int = RELIABLE_TAG

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.header_words < 0 or self.ack_words < 0:
            raise ValueError("header_words / ack_words must be >= 0")

    @classmethod
    def coerce(cls, value: "ReliabilityConfig | bool | None") -> "ReliabilityConfig | None":
        """``True`` means defaults; ``None``/``False`` mean disabled."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(f"expected ReliabilityConfig or bool, got {value!r}")


class ReliableEndpoint:
    """Per-rank reliable-transport state for one simulated run."""

    def __init__(self, ctx, config: ReliabilityConfig | None = None):
        self.ctx = ctx
        self.config = config if config is not None else ReliabilityConfig()
        self._send_seq: dict[int, int] = {}
        self._seen: dict[int, set[int]] = {}
        self._stash: dict[int, list[Any]] = {}

    @classmethod
    def of(cls, ctx, config: ReliabilityConfig) -> "ReliableEndpoint":
        """The rank's cached endpoint for ``config.tag`` (sequence numbers
        and dedup state must span every exchange the program performs)."""
        key = ("reliable_endpoint", config.tag)
        endpoint = ctx.scratch.get(key)
        if endpoint is None:
            endpoint = cls(ctx, config)
            ctx.scratch[key] = endpoint
        return endpoint

    # ------------------------------------------------------------- plumbing
    def _rto(self, words: int) -> float:
        if self.config.timeout is not None:
            return self.config.timeout
        spec = self.ctx.spec
        wire = words + self.config.header_words
        return 4.0 * spec.tau + 3.0 * spec.mu * wire + spec.tau

    def _next_seq(self, dest: int) -> int:
        seq = self._send_seq.get(dest, 0) + 1
        self._send_seq[dest] = seq
        return seq

    def _send_data(self, dest: int, seq: int, crc: int, payload: Any, words: int) -> None:
        self.ctx.send(
            dest,
            (_DATA, seq, crc, payload),
            words=words + self.config.header_words,
            tag=self.config.tag,
            auto_ack=((_ACK, seq), self.config.ack_words),
        )
        self.ctx.count("reliable.data_sends")

    def _accept_data(self, source: int, seq: int, payload: Any) -> bool:
        """Dedup a delivered data packet; True when it is new.

        The transport ack was already generated by the engine when the
        packet arrived, so nothing needs sending here.
        """
        seen = self._seen.setdefault(source, set())
        if seq in seen:
            self.ctx.count("reliable.dup_dropped")
            return False
        seen.add(seq)
        return True

    def _parse(self, msg) -> tuple[str, int, int, Any] | None:
        """Unpack a packet; None when it fails verification (corrupt)."""
        pkt = msg.payload
        if isinstance(pkt, Corrupted) or not isinstance(pkt, tuple) or not pkt:
            self.ctx.count("reliable.corrupt_rejected")
            return None
        if pkt[0] == _ACK and len(pkt) == 2:
            return (_ACK, pkt[1], 0, None)
        if pkt[0] == _DATA and len(pkt) == 4:
            kind, seq, crc, payload = pkt
            if checksum(payload) != crc:
                self.ctx.count("reliable.corrupt_rejected")
                return None
            return (kind, seq, crc, payload)
        self.ctx.count("reliable.corrupt_rejected")
        return None

    # ------------------------------------------------------- point-to-point
    def send(
        self, dest: int, payload: Any, words: int | None = None
    ) -> Generator[Any, Any, None]:
        """Stop-and-wait reliable send: ``yield from endpoint.send(...)``.

        Data packets from ``dest`` that arrive while waiting for the ack
        (both sides sending at once) are accepted and stashed for a
        later :meth:`recv`.
        """
        if words is None:
            words = self.ctx.words_of(payload)
        seq = self._next_seq(dest)
        crc = checksum(payload)
        rto = self._rto(words)
        for attempt in range(1 + self.config.max_retries):
            if attempt:
                self.ctx.count("reliable.retransmits")
            self._send_data(dest, seq, crc, payload, words)
            while True:
                msg = yield Recv(source=dest, tag=self.config.tag, timeout=rto)
                if msg is TIMEOUT:
                    self.ctx.count("reliable.timeouts")
                    break  # retransmit
                parsed = self._parse(msg)
                if parsed is None:
                    continue
                kind, got_seq, _, got_payload = parsed
                if kind == _ACK:
                    if got_seq == seq:
                        self.ctx.observe("reliable.attempts", attempt + 1)
                        return
                    continue  # stale ack of an earlier packet
                if self._accept_data(msg.source, got_seq, got_payload):
                    self._stash.setdefault(msg.source, []).append(got_payload)
        raise ReliabilityError(
            self.ctx.rank, dest, seq, attempts=1 + self.config.max_retries
        )

    def recv(self, source: int) -> Generator[Any, Any, Any]:
        """Reliable receive of the next new payload from ``source``."""
        stash = self._stash.get(source)
        if stash:
            return stash.pop(0)
        while True:
            msg = yield self.ctx.recv(source=source, tag=self.config.tag)
            parsed = self._parse(msg)
            if parsed is None:
                continue
            kind, seq, _, payload = parsed
            if kind == _ACK:
                continue  # stale ack addressed to a finished send
            if self._accept_data(source, seq, payload):
                return payload

    # -------------------------------------------------------- m2m event loop
    def exchange(
        self,
        outgoing: Mapping[int, Any],
        words: Mapping[int, int],
        expected: Iterable[int],
    ) -> Generator[Any, Any, dict[int, Any]]:
        """Reliable many-to-many round: send ``outgoing`` (pipelined, all
        at once), collect one payload from every rank in ``expected``,
        and return ``source -> payload``.

        One event loop serves both directions: any arriving packet —
        data to deliver, acks retiring our own sends — is
        handled as it comes, and a single retransmit timer (the earliest
        outstanding deadline) drives recovery.  A rank with nothing left
        outstanding blocks without a timer; its missing data is the
        *sender's* problem, and the sender's timer fires once the engine
        has nothing else to run.
        """
        got: dict[int, Any] = {}
        waiting = {s for s in expected if s != self.ctx.rank}
        # A waited-for payload may have arrived during an *earlier* round
        # on this endpoint (rounds interleave when ranks drift); serve the
        # stash before blocking on the network.
        for s in sorted(waiting):
            stash = self._stash.get(s)
            if stash:
                got[s] = stash.pop(0)
                waiting.discard(s)
        # dest -> (seq, crc, payload, words, deadline, attempts) in flight.
        outstanding: dict[int, tuple[int, int, Any, int, float, int]] = {}
        for dest in sorted(outgoing):
            if dest == self.ctx.rank:
                continue
            payload = outgoing[dest]
            w = int(words.get(dest, 0))
            seq = self._next_seq(dest)
            crc = checksum(payload)
            self._send_data(dest, seq, crc, payload, w)
            deadline = self.ctx.clock + self._rto(w)
            outstanding[dest] = (seq, crc, payload, w, deadline, 0)

        while outstanding or waiting:
            timeout = None
            if outstanding:
                deadline = min(entry[4] for entry in outstanding.values())
                timeout = max(deadline - self.ctx.clock, 1e-12)
            msg = yield Recv(source=ANY, tag=self.config.tag, timeout=timeout)
            if msg is TIMEOUT:
                self.ctx.count("reliable.timeouts")
                now = self.ctx.clock
                for dest in sorted(outstanding):
                    seq, crc, payload, w, deadline, attempts = outstanding[dest]
                    if deadline > now:
                        continue
                    if attempts >= self.config.max_retries:
                        raise ReliabilityError(
                            self.ctx.rank, dest, seq, attempts=attempts + 1
                        )
                    self.ctx.count("reliable.retransmits")
                    self._send_data(dest, seq, crc, payload, w)
                    outstanding[dest] = (
                        seq, crc, payload, w, self.ctx.clock + self._rto(w),
                        attempts + 1,
                    )
                continue
            parsed = self._parse(msg)
            if parsed is None:
                continue
            kind, seq, _, payload = parsed
            if kind == _ACK:
                entry = outstanding.get(msg.source)
                if entry is not None and entry[0] == seq:
                    del outstanding[msg.source]
                    self.ctx.observe("reliable.attempts", entry[5] + 1)
                continue
            if self._accept_data(msg.source, seq, payload):
                if msg.source in waiting:
                    got[msg.source] = payload
                    waiting.discard(msg.source)
                else:
                    # New data outside this round (interleaved protocols);
                    # keep it for a later recv() instead of losing it.
                    self._stash.setdefault(msg.source, []).append(payload)
        return got

    def __repr__(self) -> str:
        return (
            f"ReliableEndpoint(rank={self.ctx.rank}, tag={self.config.tag}, "
            f"channels={len(self._send_seq)})"
        )
