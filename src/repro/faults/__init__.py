"""Deterministic fault injection and reliable transport.

The paper's machine model (and the seed simulator) assumes a perfectly
reliable network: every message sent is eventually received, every rank
runs to completion, and all processors run at the modeled speed.  Real
coarse-grained machines violate all three.  This package makes those
violations *first-class and reproducible*:

* :class:`FaultPlan` — an immutable, seeded description of what goes
  wrong: message drop / duplication / corruption / extra delay rates,
  rank crash-at-step schedules, and per-rank straggler clock scaling.
* :class:`FaultInjector` — the per-run state derived from a plan,
  consulted by the engine's delivery and scheduling hooks.  Decisions
  are drawn from a ``random.Random(seed)`` consumed in simulation
  order, so a fixed ``(program, plan)`` pair reproduces bit-for-bit.
* :class:`ChaosPlan` (:mod:`repro.faults.chaos`) — the same idea aimed
  at the *real* process runtime: seeded placements of genuine OS faults
  (self-inflicted ``SIGKILL``/``SIGSTOP``, delayed starts, poisoned
  result messages) at exact program phases, recovered from by
  :class:`~repro.runtime.supervisor.GangSupervisor`.
* :mod:`repro.faults.reliable` — an end-to-end reliability layer built
  *on top of* the simulated ops: sequence numbers, payload checksums,
  positive acks, simulated-time retransmit timeouts and duplicate
  suppression turn the faulty at-most-once network back into an
  effectively exactly-once one.

Usage::

    from repro.faults import FaultPlan
    plan = FaultPlan(seed=7, drop_rate=0.05)
    machine = Machine(16, spec, faults=plan)
    # ... or at the host level:
    repro.pack(a, m, grid=16, faults=plan, reliability=True)

The control network is assumed reliable (its hardware combining trees
have dedicated links); faults apply to point-to-point data messages
only.  See ``docs/fault_tolerance.md``.
"""

from .plan import Corrupted, FaultPlan
from .injector import FaultInjector
from .chaos import ChaosEvent, ChaosPlan
from .reliable import (
    ReliabilityConfig,
    ReliabilityError,
    ReliableEndpoint,
    checksum,
)

__all__ = [
    "ChaosEvent",
    "ChaosPlan",
    "Corrupted",
    "FaultInjector",
    "FaultPlan",
    "ReliabilityConfig",
    "ReliabilityError",
    "ReliableEndpoint",
    "checksum",
]
