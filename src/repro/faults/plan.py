"""Fault plans: immutable, seeded descriptions of injected failures.

A :class:`FaultPlan` says *what kinds* of faults occur and *how often*;
it contains no mutable state, so one plan can parameterize many runs.
The per-run randomness lives in :class:`~repro.faults.injector.
FaultInjector`, built from the plan by :meth:`FaultPlan.build` at the
start of every :meth:`Machine.run <repro.machine.engine.Machine.run>`.

Determinism contract
--------------------
Fault decisions are drawn from ``random.Random(seed)`` in simulation
order.  The engine itself is deterministic, so the stream of decision
points — message deliveries and rank resumptions — is identical across
runs of the same program, and therefore so is every injected fault.
Changing the seed produces an independent fault pattern; changing a
rate reshuffles which decision points fire but stays reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping


class Corrupted:
    """Wrapper an injected corruption puts around a message payload.

    Models in-flight bit rot: the words on the wire are the same size
    but their content is garbage.  The reliability layer detects the
    damage via its payload checksum (a :class:`Corrupted` payload never
    checksums to the original's digest — see
    :func:`repro.faults.reliable.checksum`) and discards the packet;
    unprotected programs that receive one will fail loudly downstream.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any):
        self.original = original

    def __repr__(self) -> str:
        return f"Corrupted({self.original!r})"


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong, how often, and under which seed.

    Parameters
    ----------
    seed:
        seed of the decision stream; the whole point — two runs with the
        same plan see the *same* faults at the same decision points.
    drop_rate:
        probability that a point-to-point message vanishes in flight.
    dup_rate:
        probability that a message is delivered twice (the duplicate
        carries a fresh engine sequence number, so it is a genuinely
        distinct delivery, as a repeated network retransmit would be).
    corrupt_rate:
        probability that a payload arrives damaged (wrapped in
        :class:`Corrupted`; modeled size is unchanged).
    delay_rate / delay_seconds:
        probability that a message is held up, and for how long of
        extra simulated latency.
    crash_at:
        mapping ``rank -> step``: the rank's generator is abandoned
        just before its ``step``-th resumption (0 = before it runs at
        all).  Crashed ranks never run again; traffic addressed to them
        is dropped; a run that then gets stuck raises
        :class:`~repro.machine.errors.RankFailureError`.
    stragglers:
        mapping ``rank -> factor``: the rank's *local work* takes
        ``factor`` times longer than modeled (a slow or thermally
        throttled node).  Communication costs are unchanged.
    target_tags:
        restrict message faults (drop/dup/corrupt/delay) to these tags;
        ``None`` means every point-to-point message is fair game.
    min_words:
        only messages of at least this modeled size are faulted —
        ``min_words=1`` targets data and spares zero-word headers.

    Collectives ride the control network and are never faulted.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 1e-3
    crash_at: Mapping[int, int] = field(default_factory=dict)
    stragglers: Mapping[int, float] = field(default_factory=dict)
    target_tags: tuple[int, ...] | None = None
    min_words: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "corrupt_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.min_words < 0:
            raise ValueError(f"min_words must be >= 0, got {self.min_words}")
        # Freeze the mappings so a plan really is immutable and hashable
        # state cannot drift between the runs it parameterizes.
        object.__setattr__(self, "crash_at", MappingProxyType(dict(self.crash_at)))
        object.__setattr__(self, "stragglers", MappingProxyType(dict(self.stragglers)))
        for rank, step in self.crash_at.items():
            if step < 0:
                raise ValueError(f"crash_at[{rank}] must be >= 0, got {step}")
        for rank, factor in self.stragglers.items():
            if factor < 1.0:
                raise ValueError(
                    f"stragglers[{rank}] must be >= 1.0 (a straggler is "
                    f"slower, not faster), got {factor}"
                )
        if self.target_tags is not None:
            object.__setattr__(self, "target_tags", tuple(self.target_tags))

    @property
    def faults_messages(self) -> bool:
        """Whether any per-message fault can fire."""
        return (
            self.drop_rate > 0
            or self.dup_rate > 0
            or self.corrupt_rate > 0
            or self.delay_rate > 0
        )

    @property
    def is_noop(self) -> bool:
        return not (self.faults_messages or self.crash_at or self.stragglers)

    def build(self, nprocs: int, metrics=None) -> "FaultInjector":
        """Fresh per-run injector state (new decision stream at ``seed``)."""
        from .injector import FaultInjector

        return FaultInjector(self, nprocs, metrics=metrics)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name in ("drop_rate", "dup_rate", "corrupt_rate", "delay_rate"):
            rate = getattr(self, name)
            if rate:
                parts.append(f"{name.replace('_rate', '')}={rate:g}")
        if self.crash_at:
            parts.append(f"crash_at={dict(sorted(self.crash_at.items()))}")
        if self.stragglers:
            parts.append(f"stragglers={dict(sorted(self.stragglers.items()))}")
        return f"FaultPlan({', '.join(parts)})"
