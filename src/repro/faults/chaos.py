"""Real-process chaos plans for the multiprocessing runtime.

:class:`~repro.faults.FaultPlan` perturbs the *simulated* network: it
drops, duplicates and corrupts messages inside the cost-model engine,
where time is a number and a "crash" is a scheduler decision.  This
module is its real-world counterpart: a :class:`ChaosPlan` injects
faults into an actual gang of OS processes — a rank really receives
``SIGKILL`` mid-collective, really freezes under ``SIGSTOP``, really
starts late, or really posts a malformed result message — so the
supervisor's recovery machinery (`repro.runtime.supervisor`) is tested
against the operating system, not a model of it.

Determinism comes from *placement*, not timing: every event names the
rank, the logical operation index and the program phase at which it
fires, and the faults are **self-inflicted** — the worker looks up its
own events and signals *itself* at the exact phase boundary — so a
seeded plan reproduces the same fault at the same algorithmic point on
every run, immune to host scheduling jitter.

Event kinds
-----------
``kill``
    the rank sends itself ``SIGKILL`` when it reaches the phase: a hard
    crash with no cleanup, no result message, no exit handler.
``stop``
    the rank sends itself ``SIGSTOP``: the process stays alive but every
    thread (including its heartbeat) freezes — the canonical *hang*.
``delay``
    the rank sleeps ``seconds`` at the phase (delayed start when
    ``phase="spawn"``, mid-op straggler otherwise).
``poison``
    the rank completes the operation but posts a truncated result
    message, exercising the supervisor's poisoned-result validation.

Phases
------
``phase`` matches by prefix against the program's own ``ctx.phase(...)``
labels, plus five runtime pseudo-phases: ``"spawn"`` (worker entry,
before it reports ready), ``"start"`` (op received, before the program
runs), ``"collective"`` (entry to any collective protocol round),
``"ring_wait"`` (the rank's first transition from polling an empty shm
ring to blocking on its doorbell — ring transport only, the
kill-during-ring-wait recovery scenario), and ``"flush"`` (program
done, before the result is posted).

Usage::

    from repro.faults.chaos import ChaosEvent, ChaosPlan
    plan = ChaosPlan(events=(
        ChaosEvent(kind="kill", rank=1, op_index=0, phase="collective"),
    ))
    sup = GangSupervisor(chaos=plan)   # recovers: rebuild + retry
    MpBackend(chaos=plan)              # fails fast: MpGangError

Each event fires on at most ``times`` attempts of its operation (default
1), so a supervised retry after a single kill runs clean — raise
``times`` above the retry budget to exercise exhaustion and fallback.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["ChaosEvent", "ChaosPlan"]

#: Runtime pseudo-phases an event may target, besides program phase labels.
PSEUDO_PHASES = ("spawn", "start", "collective", "ring_wait", "flush")

_KINDS = ("kill", "stop", "delay", "poison")


@dataclass(frozen=True)
class ChaosEvent:
    """One placed fault: *what* happens to *whom*, *when*.

    Attributes
    ----------
    kind:
        ``"kill"`` | ``"stop"`` | ``"delay"`` | ``"poison"``.
    rank:
        the victim rank.
    op_index:
        the logical operation (0-based, in supervisor submission order;
        for ``phase="spawn"`` it is the 0-based gang *build* index).
        A bare :class:`~repro.runtime.mp.MpBackend` run is op 0.
    phase:
        prefix-matched against ``ctx.phase(...)`` labels and the
        pseudo-phases ``spawn`` / ``start`` / ``collective`` /
        ``ring_wait`` / ``flush``.
    seconds:
        sleep length for ``kind="delay"`` (ignored otherwise).
    times:
        on how many *attempts* of the operation the event fires; the
        supervisor decrements this per delivery, so ``times=1`` means
        the retry runs clean.
    """

    kind: str
    rank: int
    op_index: int = 0
    phase: str = "start"
    seconds: float = 0.0
    times: int = 1

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}; pick from {_KINDS}")
        if self.rank < 0:
            raise ValueError(f"chaos rank must be >= 0, got {self.rank}")
        if self.op_index < 0:
            raise ValueError(f"chaos op_index must be >= 0, got {self.op_index}")
        if self.seconds < 0:
            raise ValueError(f"chaos seconds must be >= 0, got {self.seconds}")
        if self.times < 1:
            raise ValueError(f"chaos times must be >= 1, got {self.times}")

    def matches_phase(self, label: str) -> bool:
        return label == self.phase or label.startswith(self.phase)

    def perform(self) -> None:
        """Inflict this event on the calling process (worker side).

        ``poison`` is intentionally a no-op here: it does not interrupt
        execution, it changes what the worker *posts* (the runtime checks
        for pending poison events at result time).
        """
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.kind == "stop":
            os.kill(os.getpid(), signal.SIGSTOP)
        elif self.kind == "delay":
            time.sleep(self.seconds)

    def describe(self) -> str:
        extra = f" after {self.seconds:g}s" if self.kind == "delay" else ""
        rep = f" x{self.times}" if self.times != 1 else ""
        return (f"{self.kind}(rank={self.rank}, op={self.op_index}, "
                f"phase={self.phase!r}{extra}){rep}")


def fire_chaos(events: Sequence[ChaosEvent], label: str) -> None:
    """Perform every event in ``events`` whose phase matches ``label``.

    Called from the worker's phase hooks with the events already filtered
    to this rank/op/attempt — placement logic stays host-side, the worker
    only pulls its own trigger.
    """
    for ev in events:
        if ev.matches_phase(label):
            ev.perform()


@dataclass(frozen=True)
class ChaosPlan:
    """An immutable, seeded collection of :class:`ChaosEvent` placements.

    The plan itself is pure data (picklable, shippable to workers); all
    bookkeeping about *delivered* events lives in the consumer (the
    supervisor keeps a per-event countdown so retries see ``times``
    honoured; a bare ``MpBackend`` run delivers op-0 events once).
    """

    events: tuple[ChaosEvent, ...] = ()
    seed: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def random(
        cls,
        seed: int,
        nprocs: int,
        *,
        n_events: int = 1,
        ops: int = 1,
        kinds: Sequence[str] = ("kill",),
        phases: Sequence[str] = ("start", "collective", "flush"),
        spare_rank0: bool = True,
    ) -> "ChaosPlan":
        """Draw ``n_events`` placements from ``random.Random(seed)``.

        ``spare_rank0`` keeps rank 0 out of the victim pool by default so
        a 2-rank recovery demo still has a surviving collective root on
        the rebuilt gang's first retry (any rank may still be chosen when
        disabled).
        """
        rng = random.Random(seed)
        lo = 1 if (spare_rank0 and nprocs > 1) else 0
        events = tuple(
            ChaosEvent(
                kind=rng.choice(tuple(kinds)),
                rank=rng.randrange(lo, nprocs),
                op_index=rng.randrange(ops),
                phase=rng.choice(tuple(phases)),
            )
            for _ in range(n_events)
        )
        return cls(events=events, seed=seed)

    @property
    def is_noop(self) -> bool:
        return not self.events

    def events_for(self, op_index: int, rank: int | None = None) -> tuple[ChaosEvent, ...]:
        """Events placed at ``op_index`` (optionally for one rank)."""
        return tuple(
            ev for ev in self.events
            if ev.op_index == op_index and (rank is None or ev.rank == rank)
        )

    def describe(self) -> str:
        if self.is_noop:
            return "ChaosPlan(no events)"
        head = f"ChaosPlan(seed={self.seed}, {len(self.events)} events)"
        return head + "".join(f"\n  - {ev.describe()}" for ev in self.events)
