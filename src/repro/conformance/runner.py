"""The fuzz loop and the regression corpus.

``fuzz`` drives *cases* seeded draws through the oracle, shrinks every
failure, and returns a :class:`FuzzReport` whose failures carry the
original case, the minimized case, and a paste-ready repro snippet.

The corpus (``tests/conformance/corpus/*.json``) pins every bug the fuzzer
has found: each file stores one minimized case plus a one-line description
of the bug it used to trigger.  ``replay_corpus`` re-runs all of them —
wired into the tier-1 tests so a fixed bug can never silently return.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from .cases import ConformanceCase
from .oracle import CaseOutcome, run_case
from .generator import generate_cases
from .shrink import shrink_case

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "fuzz",
    "load_corpus_case",
    "replay_corpus",
    "save_corpus_case",
]


@dataclass(frozen=True)
class FuzzFailure:
    """One fuzzer-found bug: where it came from and its minimized repro."""

    index: int
    case: ConformanceCase
    outcome: CaseOutcome
    shrunk: ConformanceCase
    shrunk_outcome: CaseOutcome
    shrink_evals: int

    def report(self) -> str:
        return (
            f"case #{self.index}: {self.outcome}\n"
            f"  original:  {self.case.describe()}\n"
            f"  minimized: {self.shrunk.describe()}"
            f"  ({self.shrink_evals} shrink evals -> {self.shrunk_outcome})\n"
            f"--- repro snippet ---\n{self.shrunk.snippet()}"
        )


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    cases: int
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        head = (
            f"conformance fuzz: {self.cases} cases, seed {self.seed}: "
            f"{len(self.failures)} failure(s)"
        )
        if self.ok:
            return head
        return head + "\n\n" + "\n\n".join(f.report() for f in self.failures)


def fuzz(
    seed: int = 0,
    cases: int = 100,
    max_shrink: int = 200,
    progress: Callable[[int, int, int], None] | None = None,
) -> FuzzReport:
    """Differentially fuzz the library against the serial reference.

    ``progress(done, total, failures)`` (if given) is called after every
    case — the CLI uses it for a heartbeat on long runs.
    """
    failures: list[FuzzFailure] = []
    drawn = generate_cases(seed, cases)
    for i, case in enumerate(drawn):
        outcome = run_case(case)
        if not outcome.ok:
            shrunk, evals = shrink_case(case, max_shrink=max_shrink)
            failures.append(
                FuzzFailure(
                    index=i, case=case, outcome=outcome,
                    shrunk=shrunk, shrunk_outcome=run_case(shrunk),
                    shrink_evals=evals,
                )
            )
        if progress is not None:
            progress(i + 1, cases, len(failures))
    return FuzzReport(seed=seed, cases=cases, failures=failures)


# ---------------------------------------------------------------- corpus
def save_corpus_case(
    path: str | Path, case: ConformanceCase, bug: str
) -> Path:
    """Write one corpus entry: the minimized case plus its bug description."""
    path = Path(path)
    entry = {"bug": bug, "case": case.to_dict()}
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus_case(path: str | Path) -> tuple[ConformanceCase, str]:
    """Read a corpus entry back: ``(case, bug description)``."""
    data = json.loads(Path(path).read_text())
    if "case" not in data:
        raise ValueError(f"{path}: corpus entry has no 'case' field")
    return ConformanceCase.from_dict(data["case"]), str(data.get("bug", ""))


def replay_corpus(
    directory: str | Path, backend: str = "sim", plan_cache=None
) -> list[tuple[Path, str, CaseOutcome]]:
    """Re-run every ``*.json`` corpus entry under ``directory``.

    Returns ``(path, bug, outcome)`` per entry, sorted by filename, so the
    caller can assert all outcomes are ``ok`` (the tier-1 regression test)
    or print a table (the CLI).  ``backend`` replays the corpus on another
    execution backend (fault/reliability entries come back
    ``kind="skipped"`` there — see :func:`~repro.conformance.oracle.run_case`).
    ``plan_cache`` is forwarded to every case — replaying the corpus twice
    with one shared :class:`~repro.core.plan_cache.PlanCache` exercises
    plan compilation on the first pass and plan replay on the second,
    under the same exact-comparison oracle.
    """
    directory = Path(directory)
    results: list[tuple[Path, str, CaseOutcome]] = []
    for path in sorted(directory.glob("*.json")):
        case, bug = load_corpus_case(path)
        results.append(
            (path, bug, run_case(case, backend=backend, plan_cache=plan_cache))
        )
    return results
