"""Differential conformance testing of the parallel PACK/UNPACK library.

The paper's algorithms must agree with the serial Fortran 90 semantics
(:mod:`repro.serial.reference`) for *every* legal configuration — any rank
``d``, any per-dimension BLOCK / CYCLIC / CYCLIC(k) distribution, any mask
density including the degenerate all-false / all-true extremes, zero-length
extents, ragged result-vector layouts, and fault plans under the reliable
transport.  Hand-written tests sample that space; this package sweeps it:

* :mod:`~repro.conformance.cases` — a serializable configuration point
  (:class:`ConformanceCase`) plus input materialization and a
  self-contained repro snippet;
* :mod:`~repro.conformance.generator` — seeded random case draws covering
  the whole configuration space;
* :mod:`~repro.conformance.oracle` — runs one case and checks it against
  the serial reference plus structural invariants (rank permutation
  validity, conservation of selected elements, field passthrough,
  pack-unpack round-trip identity);
* :mod:`~repro.conformance.shrink` — minimizes a failing case (shrink
  dims, shrink P, simplify distributions, sparsify the mask) so the repro
  is small enough to read;
* :mod:`~repro.conformance.runner` — the fuzz loop, corpus persistence and
  corpus replay (``tests/conformance/corpus/*.json`` pins every bug the
  fuzzer has found).

Driven by ``python -m repro conform``; see ``docs/conformance.md``.
"""

from .cases import ConformanceCase
from .generator import draw_case, generate_cases
from .oracle import CaseOutcome, cross_check_case, run_case
from .runner import FuzzReport, fuzz, load_corpus_case, replay_corpus, save_corpus_case
from .shrink import shrink_case

__all__ = [
    "CaseOutcome",
    "ConformanceCase",
    "FuzzReport",
    "cross_check_case",
    "draw_case",
    "fuzz",
    "generate_cases",
    "load_corpus_case",
    "replay_corpus",
    "run_case",
    "save_corpus_case",
    "shrink_case",
]
