"""One conformance configuration point, serializable and self-describing.

A :class:`ConformanceCase` fixes everything that can influence a PACK /
UNPACK execution: the operation, array shape (numpy order, zero extents
allowed), processor grid, per-axis distribution, storage scheme, mask
construction, dtypes, result-vector layout, redistribution pre-pass,
request compression, PRS / many-to-many algorithm choices, machine
profile, padding, surplus vector length, and an optional fault plan with
the reliable transport.  Input arrays are a pure function of the case
(seeded), so a case value *is* a reproduction: ``case.snippet()`` emits a
standalone script, and JSON round-tripping (:meth:`to_dict` /
:meth:`from_dict`) is what the regression corpus stores.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field, replace
from typing import Any

import numpy as np

__all__ = ["ConformanceCase", "OPS", "MASK_KINDS", "parse_dist"]

#: Operations the oracle knows how to run and check.
OPS = ("pack", "pack_vector", "unpack", "roundtrip", "ranking")

#: Mask construction recipes.
MASK_KINDS = ("random", "all_false", "all_true", "stripe", "first")

_DTYPES = {
    "float64": np.float64,
    "float32": np.float32,
    "int64": np.int64,
    "int32": np.int32,
    "int8": np.int8,
    "complex128": np.complex128,
    "bool": np.bool_,
}

_DIST_RE = re.compile(r"^cyclic\((\d+)\)$")


def parse_dist(spec: str):
    """Translate a case dist string into the host API's block argument."""
    if spec == "block":
        return "block"
    if spec == "cyclic":
        return "cyclic"
    m = _DIST_RE.match(spec)
    if m is None:
        raise ValueError(f"bad dist spec {spec!r}")
    return int(m.group(1))


def _dist_width(spec: str, n: int, p: int) -> int:
    """Resolved per-axis block size W (best effort for BLOCK on ragged N)."""
    if spec == "cyclic":
        return 1
    if spec == "block":
        return max(1, -(-n // p))
    return int(_DIST_RE.match(spec).group(1))


@dataclass(frozen=True)
class ConformanceCase:
    """A single point of the PACK/UNPACK configuration space.

    ``shape`` / ``grid`` / ``dist`` are numpy-order (slowest axis first)
    and must share their length (the array rank ``d``).
    """

    op: str = "pack"
    seed: int = 0
    shape: tuple[int, ...] = (16,)
    grid: tuple[int, ...] = (4,)
    dist: tuple[str, ...] = ("block",)
    scheme: str = "cms"
    mask_kind: str = "random"
    density: float = 0.5
    dtype: str = "float64"
    field_dtype: str | None = None
    result_block: int | None = None
    redistribute: str | None = None
    compress_requests: bool = False
    prs: str = "auto"
    m2m_schedule: str = "linear"
    machine: str = "cm5"
    pad: bool = False
    vector_extra: int = 0
    fault_seed: int | None = None
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    reliable: bool = False

    def __post_init__(self) -> None:
        # Accept any sequence for the per-axis fields (JSON gives lists)
        # but store tuples so cases stay hashable and comparable.
        for name in ("shape", "grid", "dist"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {OPS}")
        if self.mask_kind not in MASK_KINDS:
            raise ValueError(f"unknown mask kind {self.mask_kind!r}")
        if self.dtype not in _DTYPES:
            raise ValueError(f"unknown dtype {self.dtype!r}")
        if self.field_dtype is not None and self.field_dtype not in _DTYPES:
            raise ValueError(f"unknown field dtype {self.field_dtype!r}")
        d = len(self.shape)
        if d < 1 or len(self.grid) != d or len(self.dist) != d:
            raise ValueError(
                f"shape {self.shape}, grid {self.grid} and dist {self.dist} "
                f"must share one rank >= 1"
            )
        for spec in self.dist:
            parse_dist(spec)
        if any(n < 0 for n in self.shape) or any(p < 1 for p in self.grid):
            raise ValueError(f"bad shape {self.shape} / grid {self.grid}")
        if self.vector_extra < 0:
            raise ValueError(f"vector_extra must be >= 0, got {self.vector_extra}")

    # ------------------------------------------------------------ geometry
    @property
    def d(self) -> int:
        return len(self.shape)

    @property
    def nprocs(self) -> int:
        out = 1
        for p in self.grid:
            out *= p
        return out

    def divisible(self) -> bool:
        """Whether every axis meets the paper's ``P*W | N`` assumption."""
        for n, p, spec in zip(self.shape, self.grid, self.dist):
            w = _dist_width(spec, n, p)
            if n == 0 or n % (p * w) != 0:
                return False
        return True

    def normalized(self) -> "ConformanceCase":
        """The same case with ``pad`` forced on when the shape needs it."""
        if self.pad or self.divisible():
            return self
        return replace(self, pad=True)

    def block_arg(self) -> Any:
        """The host API ``block=`` argument for this case's dist tuple."""
        specs = [parse_dist(s) for s in self.dist]
        return specs[0] if self.d == 1 else specs

    # --------------------------------------------------------------- inputs
    def make_mask(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        if self.mask_kind == "all_false":
            return np.zeros(self.shape, dtype=bool)
        if self.mask_kind == "all_true":
            return np.ones(self.shape, dtype=bool)
        if self.mask_kind == "stripe":
            flat = np.arange(int(np.prod(self.shape)), dtype=np.int64)
            return ((flat % 2) == 0).reshape(self.shape)
        if self.mask_kind == "first":
            # True on a leading fraction of the row-major order — the
            # skew that concentrates all traffic on the low ranks.
            total = int(np.prod(self.shape))
            k = int(round(self.density * total))
            flat = np.zeros(total, dtype=bool)
            flat[:k] = True
            return flat.reshape(self.shape)
        return rng.random(self.shape) < self.density

    def make_array(self, which: str = "array") -> np.ndarray:
        """Seeded data array (``which`` decorrelates array/field/vector)."""
        dtype = _DTYPES[
            self.field_dtype if which == "field" and self.field_dtype else self.dtype
        ]
        streams = {"array": 1, "field": 2, "vector": 3, "pad": 4}
        rng = np.random.default_rng((self.seed << 3) + streams[which])
        if which in ("array", "field"):
            size, shape = int(np.prod(self.shape)), self.shape
        else:  # rank-1: UNPACK's input vector / PACK's VECTOR argument
            trues = int(np.count_nonzero(self.make_mask()))
            size = trues + self.vector_extra
            shape = (size,)
        return self._fill(rng, size, dtype).reshape(shape)

    @staticmethod
    def _fill(rng: np.random.Generator, size: int, dtype) -> np.ndarray:
        if np.issubdtype(dtype, np.complexfloating):
            return (rng.random(size) + 1j * rng.random(size)).astype(dtype)
        if np.issubdtype(dtype, np.floating):
            return (rng.random(size) * 100 - 50).astype(dtype)
        if dtype is np.bool_ or np.issubdtype(dtype, np.bool_):
            return rng.random(size) < 0.5
        info = np.iinfo(dtype)
        lo, hi = max(info.min, -100), min(info.max, 100)
        return rng.integers(lo, hi + 1, size).astype(dtype)

    def fault_plan(self):
        """The case's FaultPlan, or None when no fault knob is set.

        Message faults are scoped to the reliable transport's tag: that is
        the transport's contract (drops of unprotected control traffic —
        ranking PRS hops, many-to-many handshakes — deadlock by design,
        which is the documented reason the ``reliability`` knob exists).
        """
        if not any((self.drop_rate, self.dup_rate, self.corrupt_rate,
                    self.delay_rate)):
            return None
        from ..faults import FaultPlan
        from ..faults.reliable import RELIABLE_TAG

        return FaultPlan(
            seed=self.fault_seed if self.fault_seed is not None else self.seed,
            drop_rate=self.drop_rate,
            dup_rate=self.dup_rate,
            corrupt_rate=self.corrupt_rate,
            delay_rate=self.delay_rate,
            target_tags=(RELIABLE_TAG,),
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        out = asdict(self)
        out["shape"] = list(self.shape)
        out["grid"] = list(self.grid)
        out["dist"] = list(self.dist)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ConformanceCase":
        data = dict(data)
        for key in ("shape", "grid", "dist"):
            if key in data:
                data[key] = tuple(data[key])
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - names
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown case fields: {sorted(extra)}")
        return cls(**data)

    # ------------------------------------------------------------ reporting
    def describe(self) -> str:
        bits = [
            f"op={self.op}", f"seed={self.seed}",
            f"shape={'x'.join(map(str, self.shape))}",
            f"grid={'x'.join(map(str, self.grid))}",
            f"dist={','.join(self.dist)}", f"scheme={self.scheme}",
            f"mask={self.mask_kind}",
        ]
        if self.mask_kind in ("random", "first"):
            bits.append(f"density={self.density:g}")
        bits.append(f"dtype={self.dtype}")
        if self.field_dtype:
            bits.append(f"field_dtype={self.field_dtype}")
        if self.result_block is not None:
            bits.append(f"result_block={self.result_block}")
        if self.redistribute:
            bits.append(f"redistribute={self.redistribute}")
        if self.compress_requests:
            bits.append("compress")
        if self.prs != "auto":
            bits.append(f"prs={self.prs}")
        if self.m2m_schedule != "linear":
            bits.append(f"m2m={self.m2m_schedule}")
        if self.machine != "cm5":
            bits.append(f"machine={self.machine}")
        if self.pad:
            bits.append("pad")
        if self.vector_extra:
            bits.append(f"extra={self.vector_extra}")
        if self.fault_plan() is not None:
            bits.append(
                f"faults(drop={self.drop_rate:g},dup={self.dup_rate:g},"
                f"corrupt={self.corrupt_rate:g},delay={self.delay_rate:g})"
            )
        if self.reliable:
            bits.append("reliable")
        return " ".join(bits)

    def snippet(self) -> str:
        """A standalone script reproducing this case outside the fuzzer."""
        return (
            "# repro conform case — run with PYTHONPATH=src python snippet.py\n"
            "from repro.conformance import ConformanceCase, run_case\n"
            f"case = ConformanceCase.from_dict({self.to_dict()!r})\n"
            "outcome = run_case(case)\n"
            "print(outcome.kind, outcome.detail)\n"
            "assert outcome.ok, case.describe()\n"
        )
