"""Greedy minimization of failing conformance cases.

Given a case the oracle rejects, repeatedly try "smaller" variants and keep
any variant that still fails, until no candidate shrinks further or the
evaluation budget runs out.  Candidates are ordered so the structural
shrinks land first — shrink extents, drop axes, shrink the processor grid —
then the distributions are simplified toward BLOCK, and finally the
configuration knobs are reset one at a time (mask sparsified, faults
removed, dtypes collapsed to float64, schedules to their defaults).  The
result is the small, readable repro that goes into the corpus.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Callable, Iterator

from .cases import ConformanceCase
from .oracle import run_case

__all__ = ["shrink_case"]


def _axis_edit(case: ConformanceCase, j: int, **axis_fields) -> ConformanceCase:
    fields = {}
    for name, value in axis_fields.items():
        seq = list(getattr(case, name))
        seq[j] = value
        fields[name] = tuple(seq)
    return replace(case, **fields)


def _candidates(case: ConformanceCase) -> Iterator[ConformanceCase]:
    """Strictly-simpler variants, most aggressive first."""
    d = case.d
    # 1. Shrink dims: halve extents (zero is legal and stays reachable).
    for j in range(d):
        n = case.shape[j]
        if n > 0:
            yield _axis_edit(case, j, shape=n // 2)
        if n > 1:
            yield _axis_edit(case, j, shape=n - 1)
    # ... and drop whole axes.
    if d > 1:
        for j in range(d):
            keep = [i for i in range(d) if i != j]
            yield replace(
                case,
                shape=tuple(case.shape[i] for i in keep),
                grid=tuple(case.grid[i] for i in keep),
                dist=tuple(case.dist[i] for i in keep),
            )
    # 2. Shrink P.
    for j in range(d):
        p = case.grid[j]
        if p > 1:
            yield _axis_edit(case, j, grid=p // 2)
            yield _axis_edit(case, j, grid=p - 1)
    # 3. Simplify distributions toward BLOCK.
    for j in range(d):
        if case.dist[j] != "block":
            yield _axis_edit(case, j, dist="block")
            if case.dist[j] != "cyclic":
                yield _axis_edit(case, j, dist="cyclic")
    # 4. Sparsify / regularize the mask.
    if case.mask_kind != "random":
        yield replace(case, mask_kind="random")
    if case.mask_kind in ("random", "first") and case.density > 0.0:
        yield replace(case, density=0.0)
        yield replace(case, density=round(case.density / 2, 3))
    # 5. Reset configuration knobs one at a time.
    if case.fault_plan() is not None or case.reliable:
        yield replace(case, fault_seed=None, drop_rate=0.0, dup_rate=0.0,
                      corrupt_rate=0.0, delay_rate=0.0, reliable=False)
    if case.redistribute is not None:
        yield replace(case, redistribute=None)
    if case.compress_requests:
        yield replace(case, compress_requests=False)
    if case.result_block is not None:
        yield replace(case, result_block=None)
    if case.vector_extra:
        yield replace(case, vector_extra=0)
    if case.field_dtype is not None:
        yield replace(case, field_dtype=None)
    if case.dtype != "float64":
        yield replace(case, dtype="float64")
    if case.machine != "cm5":
        yield replace(case, machine="cm5")
    if case.prs != "auto":
        yield replace(case, prs="auto")
    if case.m2m_schedule != "linear":
        yield replace(case, m2m_schedule="linear")
    if case.scheme != "sss":
        yield replace(case, scheme="sss")
    if case.pad:
        yield replace(case, pad=False)
    if case.seed != 0:
        yield replace(case, seed=0)


def _key(case: ConformanceCase) -> str:
    return json.dumps(case.to_dict(), sort_keys=True)


def shrink_case(
    case: ConformanceCase,
    failing: Callable[[ConformanceCase], bool] | None = None,
    max_shrink: int = 200,
) -> tuple[ConformanceCase, int]:
    """Minimize ``case`` while ``failing`` stays true.

    ``failing`` defaults to "the oracle rejects it".  Returns the smallest
    failing case found plus the number of oracle evaluations spent (capped
    at ``max_shrink``).  The input case is assumed to fail; it is returned
    unchanged when the budget is zero or nothing smaller still fails.
    """
    if failing is None:
        failing = lambda c: not run_case(c).ok  # noqa: E731
    current = case.normalized()
    seen = {_key(current)}
    evals = 0
    improved = True
    while improved and evals < max_shrink:
        improved = False
        for cand in _candidates(current):
            cand = cand.normalized()
            key = _key(cand)
            if key in seen:
                continue
            seen.add(key)
            evals += 1
            if failing(cand):
                current = cand
                improved = True
                break  # restart from the shrunk case
            if evals >= max_shrink:
                break
    return current, evals
