"""Run one conformance case and judge it against the serial semantics.

The parallel result must match the NumPy reference *exactly* (values and
shape; dtypes must agree under the library's promotion rule).  On top of
the reference comparison, structural invariants are checked — they catch
bugs even in configurations where the reference itself might be suspect:

* **rank permutation validity** (``ranking``): the ranks of the mask-true
  elements are exactly ``0 .. Size-1``, each once, ascending in row-major
  element order, and ``-1`` elsewhere;
* **conservation** (``pack``): the packed prefix equals the mask-selected
  elements in row-major order — nothing lost, duplicated or reordered;
* **field passthrough** (``unpack``): mask-false positions carry the field
  values untouched;
* **round-trip identity** (``roundtrip``): ``UNPACK(PACK(A, M), M, A)``
  reproduces ``A`` exactly, for any mask (full masks make it the
  idempotence law ``unpack . pack = id``).

All exceptions escaping the library are failures (kind ``"error"``) — the
generator only emits legal configurations, so nothing should raise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..serial.reference import mask_ranks, pack_reference, unpack_reference
from .cases import ConformanceCase

__all__ = ["CaseOutcome", "run_case"]


@dataclass(frozen=True)
class CaseOutcome:
    """Verdict for one case: ``ok``, or why not (one line, human-sized)."""

    ok: bool
    kind: str  # "ok" | "mismatch" | "invariant" | "error"
    detail: str = ""

    def __str__(self) -> str:
        return self.kind if self.ok else f"{self.kind}: {self.detail}"


_OK = CaseOutcome(ok=True, kind="ok")


def _spec(case: ConformanceCase):
    from ..machine import CM5, ETHERNET_CLUSTER, IDEAL

    return {"cm5": CM5, "cluster": ETHERNET_CLUSTER, "ideal": IDEAL}[case.machine]


def _mismatch(what: str, got, want) -> CaseOutcome:
    got = np.asarray(got)
    want = np.asarray(want)
    if got.shape != want.shape:
        return CaseOutcome(
            False, "mismatch", f"{what}: shape {got.shape} != {want.shape}"
        )
    bad = np.flatnonzero(~np.isclose(got.ravel(), want.ravel(), rtol=0, atol=0,
                                     equal_nan=True))
    where = f" first at flat index {bad[0]}" if bad.size else ""
    return CaseOutcome(
        False, "mismatch",
        f"{what}: {bad.size}/{got.size} elements differ{where}",
    )


def _equal(got, want) -> bool:
    got = np.asarray(got)
    want = np.asarray(want)
    return got.shape == want.shape and bool(np.array_equal(got, want))


def run_case(
    case: ConformanceCase, backend: str = "sim", plan_cache=None
) -> CaseOutcome:
    """Execute the case's operation and check every applicable property.

    ``backend`` selects the execution backend (see :mod:`repro.runtime`);
    the same oracle judges every backend.  Cases that depend on
    simulator-only machinery (fault plans, the reliable transport) are
    reported as ``kind="skipped"`` (``ok=True``) under other backends —
    they exercise the simulated network, not the algorithms.

    ``plan_cache`` is forwarded to every library call (see
    :mod:`repro.core.plan_cache`): replaying a corpus with a shared cache
    checks that plan replay is bit-identical to fresh compilation — the
    oracle's comparisons are exact, so a stale or mis-keyed plan fails the
    same way any other bug does.  Fault/reliability cases bypass the cache
    inside the library itself.
    """
    case = case.normalized()
    try:
        return _run(case, backend, plan_cache)
    except Exception as exc:  # noqa: BLE001 - every escape is a failure
        return CaseOutcome(False, "error", f"{type(exc).__name__}: {exc}")


def cross_check_case(
    case: ConformanceCase, backends=("sim", "mp"), plan_cache=None
) -> CaseOutcome:
    """Differential backend mode: the case must pass the oracle on every
    backend.

    The oracle's comparison is bit-exact against the one serial reference,
    so two backends that both pass are transitively bit-identical to each
    other — no separate pairwise comparison is needed.  The first failing
    backend is reported (prefixed with its name); a case only the
    simulator can run comes back ``kind="skipped"``.
    """
    for backend in backends:
        outcome = run_case(case, backend=backend, plan_cache=plan_cache)
        if not outcome.ok:
            return CaseOutcome(
                False, outcome.kind, f"[backend={backend}] {outcome.detail}"
            )
        if outcome.kind == "skipped":
            return outcome
    return _OK


def _run(
    case: ConformanceCase, backend: str = "sim", plan_cache=None
) -> CaseOutcome:
    from ..core.api import pack, ranking, unpack

    mask = case.make_mask()
    spec = _spec(case)
    faults = case.fault_plan()
    reliability = True if (case.reliable or faults is not None) else None
    if backend != "sim" and (faults is not None or reliability):
        return CaseOutcome(
            True, "skipped",
            f"fault/reliability case needs the simulated network "
            f"(backend={backend!r})",
        )
    common = dict(
        grid=case.grid, block=case.block_arg(), spec=spec,
        prs=case.prs, m2m_schedule=case.m2m_schedule,
        result_block=case.result_block, pad=case.pad, validate=False,
        backend=backend, plan_cache=plan_cache,
    )
    size = int(np.count_nonzero(mask))

    if case.op == "ranking":
        result = ranking(
            mask, grid=case.grid, block=case.block_arg(), spec=spec,
            prs=case.prs, scheme="css" if case.scheme == "cms" else case.scheme,
            pad=case.pad, validate=False, backend=backend,
            plan_cache=plan_cache,
        )
        expected = mask_ranks(mask)
        if not _equal(result.ranks, expected):
            return _mismatch("ranks", result.ranks, expected)
        if result.size != size:
            return CaseOutcome(False, "mismatch",
                               f"Size {result.size} != {size}")
        got = np.sort(result.ranks[mask]) if size else np.empty(0, np.int64)
        if not np.array_equal(got, np.arange(size)):
            return CaseOutcome(
                False, "invariant",
                "mask-true ranks are not the permutation 0..Size-1",
            )
        if np.any(result.ranks[~mask] != -1):
            return CaseOutcome(False, "invariant",
                               "mask-false positions must rank -1")
        return _OK

    array = case.make_array("array")

    if case.op in ("pack", "pack_vector"):
        vector_arg = case.make_array("pad") if case.op == "pack_vector" else None
        result = pack(
            array, mask, scheme=case.scheme,
            redistribute=case.redistribute, vector=vector_arg,
            faults=faults, reliability=reliability, **common,
        )
        expected = pack_reference(array, mask, vector_arg)
        if not _equal(result.vector, expected):
            return _mismatch("pack", result.vector, expected)
        if result.size != size:
            return CaseOutcome(False, "mismatch",
                               f"Size {result.size} != {size}")
        if not _equal(result.vector[:size], array[mask]):
            return CaseOutcome(
                False, "invariant",
                "packed prefix does not conserve the selected elements",
            )
        if result.vector.dtype != expected.dtype:
            return CaseOutcome(
                False, "invariant",
                f"pack dtype {result.vector.dtype} != {expected.dtype}",
            )
        return _OK

    if case.op == "unpack":
        field = case.make_array("field")
        vector = case.make_array("vector")
        unpack_scheme = "css" if case.scheme == "cms" else case.scheme
        result = unpack(
            vector, mask, field, scheme=unpack_scheme,
            compress_requests=case.compress_requests,
            faults=faults, reliability=reliability, **common,
        )
        expected = unpack_reference(vector, mask, field)
        if not _equal(result.array, expected):
            return _mismatch("unpack", result.array, expected)
        if result.array.dtype != expected.dtype:
            return CaseOutcome(
                False, "invariant",
                f"unpack dtype {result.array.dtype} != {expected.dtype}",
            )
        if not _equal(result.array[~mask],
                      expected[~mask]):
            return CaseOutcome(False, "invariant",
                               "field passthrough violated on mask-false")
        if not _equal(result.array[mask], vector[:size].astype(
                expected.dtype, copy=False)):
            return CaseOutcome(False, "invariant",
                               "vector placement violated on mask-true")
        return _OK

    # roundtrip: UNPACK(PACK(A, M), M, A) == A for any mask.
    packed = pack(
        array, mask, scheme=case.scheme, redistribute=case.redistribute,
        faults=faults, reliability=reliability, **common,
    )
    unpack_scheme = "css" if case.scheme == "cms" else case.scheme
    restored = unpack(
        packed.vector, mask, array, scheme=unpack_scheme,
        compress_requests=case.compress_requests,
        faults=faults, reliability=reliability, **common,
    )
    if not _equal(restored.array, array):
        return _mismatch("roundtrip", restored.array, array)
    return _OK
