"""Seeded random draws over the PACK/UNPACK configuration space.

The draw is deliberately biased toward the regions where redistribution
bugs hide: degenerate masks (all-false / all-true get a fixed share),
zero-length and tiny extents, CYCLIC(k) distributions with more processors
than elements, ragged result-vector layouts (``result_block``), mixed
dtypes, and fault plans under the reliable transport.  Everything is a
pure function of the stream drawn from ``numpy.random.default_rng(seed)``,
so ``generate_cases(seed, n)[i]`` is stable forever — corpus entries and
CI runs cite ``(seed, index)`` pairs.
"""

from __future__ import annotations

import numpy as np

from .cases import ConformanceCase

__all__ = ["draw_case", "generate_cases"]

#: Per-axis extents, weighted toward the degenerate end.
_EXTENTS = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48)
_EXTENT_W = (4, 6, 8, 8, 10, 8, 10, 6, 8, 4, 3, 2)

_GRIDS = (1, 2, 3, 4)
_GRID_W = (3, 5, 3, 4)

_DTYPES = ("float64", "float32", "int64", "int32", "int8", "complex128", "bool")
_DTYPE_W = (8, 3, 3, 2, 2, 2, 2)


def _choice(rng: np.random.Generator, items, weights=None):
    if weights is None:
        return items[int(rng.integers(len(items)))]
    w = np.asarray(weights, dtype=float)
    return items[int(rng.choice(len(items), p=w / w.sum()))]


def _draw_axes(rng: np.random.Generator) -> tuple[tuple, tuple, tuple]:
    d = _choice(rng, (1, 2, 3), (10, 6, 4))
    shape, grid, dist = [], [], []
    for _ in range(d):
        n = _choice(rng, _EXTENTS, _EXTENT_W)
        p = _choice(rng, _GRIDS, _GRID_W)
        kind = _choice(rng, ("block", "cyclic", "cyclic_k"), (8, 5, 5))
        if kind == "cyclic_k":
            spec = f"cyclic({_choice(rng, (1, 2, 3, 4), (4, 4, 2, 2))})"
        else:
            spec = kind
        shape.append(n)
        grid.append(p)
        dist.append(spec)
    # Keep the simulated machine small: trim processors before elements.
    while int(np.prod(grid)) > 16:
        j = int(np.argmax(grid))
        grid[j] = max(1, grid[j] // 2)
    while int(np.prod([max(n, 1) for n in shape])) > 4096:
        j = int(np.argmax(shape))
        shape[j] = max(1, shape[j] // 2)
    return tuple(shape), tuple(grid), tuple(dist)


def _draw_mask(rng: np.random.Generator) -> tuple[str, float]:
    kind = _choice(
        rng, ("random", "all_false", "all_true", "stripe", "first"),
        (10, 2, 2, 2, 2),
    )
    if kind == "random":
        density = _choice(
            rng,
            (0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0),
            (1, 2, 3, 4, 3, 2, 1),
        )
    elif kind == "first":
        density = float(rng.uniform(0.1, 0.9))
    else:
        density = 0.5
    return kind, float(density)


def draw_case(rng: np.random.Generator, seed: int = 0) -> ConformanceCase:
    """One random case; ``seed`` feeds the case's own data streams."""
    shape, grid, dist = _draw_axes(rng)
    op = _choice(
        rng, ("pack", "unpack", "pack_vector", "roundtrip", "ranking"),
        (10, 8, 3, 4, 3),
    )
    scheme = _choice(rng, ("sss", "css", "cms"))
    mask_kind, density = _draw_mask(rng)
    dtype = _choice(rng, _DTYPES, _DTYPE_W)
    field_dtype = None
    if op == "unpack" and rng.random() < 0.3:
        field_dtype = _choice(rng, _DTYPES, _DTYPE_W)
    result_block = None
    if rng.random() < 0.35:
        result_block = int(_choice(rng, (1, 2, 3, 4), (4, 3, 2, 2)))
    redistribute = None
    if op in ("pack", "pack_vector", "roundtrip") and rng.random() < 0.2:
        redistribute = _choice(rng, ("selected", "whole"))
    compress = (
        op in ("unpack", "roundtrip")
        and scheme != "sss"
        and bool(rng.random() < 0.3)
    )
    machine = _choice(rng, ("cm5", "cluster", "ideal"), (6, 2, 2))
    prs_pool = ("auto", "direct", "split", "ctrl") if machine == "cm5" else (
        "auto", "direct", "split")
    prs = _choice(rng, prs_pool)
    m2m = _choice(rng, ("linear", "naive", "direct"), (6, 2, 2))
    vector_extra = 0
    if op in ("unpack", "pack_vector") and rng.random() < 0.3:
        vector_extra = int(rng.integers(1, 9))
    case = ConformanceCase(
        op=op, seed=seed, shape=shape, grid=grid, dist=dist,
        scheme=scheme, mask_kind=mask_kind, density=density,
        dtype=dtype, field_dtype=field_dtype, result_block=result_block,
        redistribute=redistribute, compress_requests=compress,
        prs=prs, m2m_schedule=m2m, machine=machine,
        pad=bool(rng.random() < 0.2), vector_extra=vector_extra,
    )
    # Fault plans ride the reliable transport on the data-moving ops.
    if op in ("pack", "unpack", "roundtrip") and rng.random() < 0.15:
        case = ConformanceCase(
            **{
                **case.to_dict(),
                "fault_seed": int(rng.integers(0, 1 << 16)),
                "drop_rate": float(_choice(rng, (0.0, 0.02, 0.05))),
                "dup_rate": float(_choice(rng, (0.0, 0.02))),
                "corrupt_rate": float(_choice(rng, (0.0, 0.02))),
                "delay_rate": float(_choice(rng, (0.0, 0.1))),
                "reliable": True,
            }
        )
    return case.normalized()


def generate_cases(seed: int, n: int) -> list[ConformanceCase]:
    """The first ``n`` cases of stream ``seed`` (stable across versions)."""
    rng = np.random.default_rng(seed)
    return [draw_case(rng, seed=int(rng.integers(0, 1 << 31))) for _ in range(n)]
