"""Serial reference implementations (the correctness oracle).

Every parallel result in this library is checked against the functions in
:mod:`repro.serial.reference`, which implement the Fortran 90 semantics of
``PACK`` / ``UNPACK`` directly with numpy.
"""

from .reference import (
    mask_ranks,
    pack_reference,
    pack_size,
    unpack_reference,
)

__all__ = ["mask_ranks", "pack_reference", "pack_size", "unpack_reference"]
