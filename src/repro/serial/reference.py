"""Numpy reference semantics for PACK / UNPACK and mask ranking.

The paper (Section 3) adopts *row-major* element order: the array has shape
``(N_{d-1}, ..., N_1, N_0)`` and element ``A(i_{d-1}, ..., i_0)`` has rank
``sum_i i_i * prod_{k<i} N_k``, i.e. dimension 0 varies fastest.  Flattening
a numpy array of that shape in C order produces exactly this ordering, so
dimension *i* of the paper is numpy axis ``d-1-i`` throughout the library.

(Reference Fortran 90 PACK uses column-major order; the paper normalizes to
row-major and so do we — the algorithms are order-agnostic up to relabeling
of dimensions.)
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_reference", "unpack_reference", "mask_ranks", "pack_size"]


def _check_conformable(a: np.ndarray, m: np.ndarray, name: str = "mask") -> None:
    if a.shape != m.shape:
        raise ValueError(f"{name} shape {m.shape} not conformable with array shape {a.shape}")


def pack_size(mask: np.ndarray) -> int:
    """Number of true elements — the size of PACK's result vector."""
    return int(np.count_nonzero(mask))


def pack_reference(
    array: np.ndarray, mask: np.ndarray, vector: np.ndarray | None = None
) -> np.ndarray:
    """Serial PACK: gather ``array`` elements where ``mask`` is true.

    Elements appear in the result in row-major array-element order.  With
    the optional third argument (Fortran 90's ``VECTOR``), the result has
    ``vector``'s size — which must be at least the number of trues — and
    positions past the packed elements take ``vector``'s values.
    """
    array = np.asarray(array)
    mask = np.asarray(mask, dtype=bool)
    _check_conformable(array, mask)
    # C-order boolean indexing yields exactly row-major element order.
    packed = array[mask].copy()
    if vector is None:
        return packed
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValueError(f"PACK's VECTOR must be rank 1, got rank {vector.ndim}")
    if vector.size < packed.size:
        raise ValueError(
            f"PACK's VECTOR has {vector.size} elements but the mask selects "
            f"{packed.size}"
        )
    out = vector.copy()
    out[: packed.size] = packed
    return out


def unpack_reference(
    vector: np.ndarray, mask: np.ndarray, field: np.ndarray
) -> np.ndarray:
    """Serial UNPACK: scatter ``vector`` into mask-true positions of a copy
    of ``field``.

    ``vector`` must hold at least as many elements as ``mask`` has trues
    (the Fortran 90 requirement ``N' >= Size``); surplus elements are
    ignored.  ``field`` may be a scalar (Fortran 90 allows a scalar
    FIELD), in which case it fills every mask-false position.
    """
    vector = np.asarray(vector)
    mask = np.asarray(mask, dtype=bool)
    field = np.asarray(field)
    if field.ndim == 0:
        field = np.full(mask.shape, field[()])
    _check_conformable(field, mask, name="mask")
    size = pack_size(mask)
    if vector.ndim != 1:
        raise ValueError(f"UNPACK input vector must be rank 1, got rank {vector.ndim}")
    if vector.size < size:
        raise ValueError(
            f"UNPACK vector has {vector.size} elements but mask selects {size}"
        )
    # Promote to the common dtype of vector and field (Fortran 90 requires
    # them to agree; for mixed numpy inputs the result must not depend on
    # which positions happen to be true).
    out = field.astype(np.result_type(vector.dtype, field.dtype), copy=True)
    out[mask] = vector[:size]
    return out


def mask_ranks(mask: np.ndarray) -> np.ndarray:
    """Global rank of every mask-true element, -1 elsewhere.

    The rank of a true element is the number of true elements strictly
    before it in row-major order — i.e. its index in PACK's result vector.
    Shape matches ``mask``; dtype is int64.
    """
    mask = np.asarray(mask, dtype=bool)
    flat = mask.ravel()
    ranks = np.cumsum(flat, dtype=np.int64) - 1
    out = np.where(flat, ranks, -1)
    return out.reshape(mask.shape)
