"""Selected-element bookkeeping — what the storage schemes store or derive.

The *simple storage scheme* materializes, during the initial ranking scan,
one record per selected element (local index per dimension, tile number,
in-slice rank, destination).  The *compact* schemes store nothing and
re-derive everything from the counter array ``PS_c`` and the final
base-rank array ``PS_f``.

Either way, the redistribution stage needs the same three vectors per rank
— flat local positions, global ranks, destination processors, all in local
element order (ascending global order, hence ascending rank).  This module
produces them; the *cost* difference between the schemes is charged by
:class:`~repro.core.costs.StepCosts`, and the *data* difference (records
vs rescan) shows up in which charge functions the pack/unpack programs
invoke.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hpf.grid import GridLayout
from ..hpf.vector import VectorLayout
from .ranking import LocalRanking

__all__ = ["SelectedElements", "extract_selected", "selected_from_plan"]


@dataclass
class SelectedElements:
    """The selected (mask-true) elements of one rank, in ascending-rank order.

    Attributes
    ----------
    positions:
        flat local indices (C order over the local block).
    values:
        the selected array elements.
    ranks:
        global ranks (ascending — local storage order is ascending global
        order, and rank is monotone in global index).
    dests:
        destination rank of each element under the result vector's layout.
    slice_ids:
        local slice number of each element (``positions // W_0`` —
        dimension-0 slices are contiguous in the C-order flat local
        index).  Consecutive elements sharing a slice have *consecutive*
        ranks, the property the compact message scheme exploits.
    """

    positions: np.ndarray
    values: np.ndarray
    ranks: np.ndarray
    dests: np.ndarray
    slice_ids: np.ndarray
    _breaks: np.ndarray | None = None
    _seg_count: int | None = None

    @property
    def count(self) -> int:
        return int(self.positions.size)

    def segment_breaks(self) -> np.ndarray:
        """Boolean vector marking the first element of each message segment.

        A segment is a maximal run of elements in one slice bound for one
        destination; within it, ranks are consecutive by the slice
        property, so ``(base-rank, count)`` describes all of them.

        Computed once and cached — cost charging, composition, and request
        grouping all consult it.
        """
        if self._breaks is not None:
            return self._breaks
        n = self.count
        brk = np.ones(n, dtype=bool)
        if n > 1:
            np.not_equal(self.slice_ids[1:], self.slice_ids[:-1], out=brk[1:])
            brk[1:] |= self.dests[1:] != self.dests[:-1]
        self._breaks = brk
        return brk

    @property
    def segment_count(self) -> int:
        """``Gs_i``: total message segments this rank would compose."""
        if self._seg_count is None:
            self._seg_count = int(self.segment_breaks().sum())
        return self._seg_count


def selected_from_plan(plan, local_array: np.ndarray) -> SelectedElements:
    """Rebind a compiled :class:`~repro.core.plan.PackRankPlan`'s
    mask-derived vectors to fresh data.

    Everything but the values is mask-derived and comes straight from the
    plan; only the gather of the selected elements happens per call —
    the same rebinding :func:`repro.core.multi.pack_many_program` does
    between arrays of one gang, generalized across calls.
    """
    return SelectedElements(
        positions=plan.positions,
        values=np.asarray(local_array).ravel()[plan.positions],
        ranks=plan.ranks,
        dests=plan.dests,
        slice_ids=plan.slice_ids,
    )


def extract_selected(
    local_array: np.ndarray | None,
    local_mask: np.ndarray,
    ranking: LocalRanking,
    grid: GridLayout,
    vec: VectorLayout,
) -> SelectedElements:
    """Produce the per-rank selected-element vectors (see module docstring).

    This is the *data* computation shared by every scheme; the schemes
    differ in the time charged for obtaining it.  ``local_array=None``
    compiles the mask-derived vectors only (``values`` stays ``None``) —
    the plan/execute split's compile path, which never sees data.
    """
    local_mask = np.asarray(local_mask, dtype=bool)
    flat_mask = local_mask.ravel()
    positions = np.flatnonzero(flat_mask)
    if local_array is None:
        values = None
    else:
        values = np.asarray(local_array).ravel()[positions]
    w0 = grid.dims[0].w
    slice_ids = positions // w0
    # Rank of a selected element = its in-slice rank plus its slice's base
    # rank — gathered for the E selected elements only, instead of
    # materialising the full L-element rank array
    # (``ranking.element_ranks``) just to index E entries out of it.
    ranks = ranking.initial.ravel()[positions] + ranking.ps_f.ravel()[slice_ids]
    dests = vec.owners(ranks) if ranks.size else np.empty(0, dtype=np.int64)
    if ranks.size > 1 and not np.all(ranks[1:] > ranks[:-1]):
        raise AssertionError("internal error: local ranks not strictly increasing")
    return SelectedElements(
        positions=positions,
        values=values,
        ranks=ranks.astype(np.int64, copy=False),
        dests=np.asarray(dests, dtype=np.int64),
        slice_ids=slice_ids.astype(np.int64, copy=False),
    )
