"""Arbitrary array shapes via mask-false padding.

The paper (Section 3) assumes ``P_i * W_i | N_i`` on every dimension,
which keeps every processor's local block identical — the property the
ranking working arrays rely on.  Real arrays rarely oblige.  The clean
generalization follows from PACK's own semantics: *padding an array with
mask-false elements changes nothing* — padded positions are never
selected, so ranks, Size and the result vector are identical.  Likewise
for UNPACK, padded positions simply take (discarded) field values.

This module rounds each extent up to the next multiple of ``P_i * W_i``,
pads the array (with zeros of the right dtype) and the mask (with
``False``), runs the standard algorithms, and crops UNPACK results back.
The padding is pure host-side preparation: the simulated machine works on
the padded shape, so the reported times include the (small) cost of
scanning the padding — exactly what a real runtime using this trick would
pay.

Enabled through the host API with ``pad=True``::

    repro.pack(a, m, grid=16, block=8, pad=True)   # any N
"""

from __future__ import annotations

import numpy as np

__all__ = ["padded_shape", "pad_array", "pad_mask", "crop", "resolve_padding"]


def padded_shape(shape, grid, block) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """(padded shape, resolved per-axis block sizes) for numpy-order specs.

    Each extent is rounded up to the least multiple of ``P_j * W_j``.
    String/Dist block specs resolve against the *padded* extent for
    ``block`` (so "block" means one block per processor after padding)
    and against a best-effort extent for "cyclic" (W = 1 regardless).
    """
    shape = tuple(int(n) for n in shape)
    grid = tuple(int(p) for p in grid)
    if len(shape) != len(grid):
        raise ValueError(f"shape {shape} and grid {grid} have different ranks")
    d = len(shape)
    if block is None:
        block = "block"
    if isinstance(block, (int, str)) or not isinstance(block, (list, tuple)):
        block = [block] * d
    from ..hpf.dist import Dist

    out_shape = []
    out_block = []
    for n, p, b in zip(shape, grid, block):
        if isinstance(b, bool):
            raise ValueError(f"bad block spec {b!r}")
        if isinstance(b, int):
            w = b
        elif isinstance(b, Dist):
            if b.kind == "cyclic":
                w = 1
            elif b.kind == "block_cyclic":
                w = int(b.w)
            else:  # BLOCK: one block per processor over the padded extent
                w = -(-n // p)
        elif isinstance(b, str) and b.lower() == "cyclic":
            w = 1
        elif b is None or (isinstance(b, str) and b.lower() == "block"):
            w = -(-n // p)
        else:
            raise ValueError(f"bad block spec {b!r}")
        if n < 0:
            raise ValueError(f"negative extent {n}")
        # Zero-length extents (legal in Fortran 90: PACK of a zero-size
        # array is a zero-size vector) pad up to one full tile so every
        # processor owns a (mask-false) block; the crop restores the
        # zero extent afterwards.
        w = max(1, w)
        unit = p * w
        padded = max(1, -(-n // unit)) * unit
        out_shape.append(padded)
        out_block.append(w)
    return tuple(out_shape), tuple(out_block)


def pad_array(array: np.ndarray, padded: tuple[int, ...]) -> np.ndarray:
    """Zero-pad ``array`` up to ``padded`` (no-op when shapes match)."""
    array = np.asarray(array)
    if array.shape == tuple(padded):
        return array
    pad = [(0, p - n) for n, p in zip(array.shape, padded)]
    return np.pad(array, pad, mode="constant")


def pad_mask(mask: np.ndarray, padded: tuple[int, ...]) -> np.ndarray:
    """False-pad ``mask`` up to ``padded`` — padding is never selected."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape == tuple(padded):
        return mask
    pad = [(0, p - n) for n, p in zip(mask.shape, padded)]
    return np.pad(mask, pad, mode="constant", constant_values=False)


def crop(array: np.ndarray, original: tuple[int, ...]) -> np.ndarray:
    """Crop a padded result back to the original shape."""
    array = np.asarray(array)
    if array.shape == tuple(original):
        return array
    slices = tuple(slice(0, n) for n in original)
    return array[slices].copy()


def resolve_padding(shape, grid, block):
    """Convenience: (needs_padding, padded_shape, resolved_block)."""
    padded, blocks = padded_shape(shape, grid, block)
    return padded != tuple(shape), padded, blocks
