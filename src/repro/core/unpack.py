"""The parallel UNPACK program (Sections 4.2, 6.1).

UNPACK scatters a distributed input vector ``V`` into the mask-true
positions of a result array conformable with / aligned to the mask; where
the mask is false the result takes the field array ``F`` (a purely local
copy).

The ranking stage is identical to PACK's.  The redistribution stage is a
READ, so *two-phase* communication is required (no data owner knows who
needs its elements): each processor first sends each vector owner the list
of ranks it needs (phase A), then owners send the values back (phase B).
Consequently UNPACK's communication volume is roughly **twice** PACK's —
the paper's Section 4.2 observation, reproduced by the Figure 5 benchmark.

Schemes: SSS stores per-element bookkeeping during the ranking scan; CSS
re-derives positions by a second scan (Section 7 measures exactly these
two for UNPACK; the compact *message* scheme does not apply because
requests must carry explicit ranks either way).

Phases charged: ``unpack.ranking.*``, ``unpack.requests``,
``unpack.comm.request``, ``unpack.serve``, ``unpack.comm.reply``,
``unpack.place``, ``unpack.merge``.

**Plan/execute split** (:mod:`repro.core.plan`): everything through the
phase-A request exchange is mask-derived — including which requests each
rank *receives*, since senders are deterministic in the mask.  A compiled
:class:`~repro.core.plan.UnpackRankPlan` therefore carries each rank's
incoming request tables, and a plan execution skips phase A outright:
only the value replies (phase B) move for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Generator

import numpy as np

from ..hpf.grid import GridLayout
from ..hpf.vector import VectorLayout
from ..machine.context import Context
from ..machine.m2m import exchange
from .costs import StepCosts
from .messages import gather_segments
from .plan import ChargeRecorder, UnpackRankPlan, replay_charges
from .ranking import (
    ranking_phase_names,
    ranking_program,
    slice_scan_lengths,
    slice_view,
)
from .schemes import PackConfig, Scheme
from .storage import extract_selected

__all__ = ["UnpackLocal", "unpack_program", "input_vector_layout"]

_TAG_REPLY = 950


@dataclass
class UnpackLocal:
    """Per-rank outcome of the UNPACK program."""

    array_block: np.ndarray
    size: int
    e_i: int  # masked positions filled on this rank
    served: int  # vector elements this rank supplied to others (self incl.)
    rank_plan: UnpackRankPlan | None = None


def input_vector_layout(n_vector: int, nprocs: int, config: PackConfig) -> VectorLayout:
    """Layout of UNPACK's input vector (BLOCK in all paper experiments)."""
    if config.result_block is None:
        return VectorLayout.block(n_vector, nprocs)
    return VectorLayout.cyclic(n_vector, nprocs, w=config.result_block)


def unpack_program(
    ctx: Context,
    vector_block: np.ndarray,
    local_mask: np.ndarray | None,
    local_field: np.ndarray,
    grid: GridLayout,
    n_vector: int,
    config: PackConfig,
    phase_prefix: str = "unpack",
    plan: UnpackRankPlan | None = None,
    capture: bool = False,
) -> Generator[Any, Any, UnpackLocal]:
    """SPMD UNPACK on one rank.

    ``vector_block`` is this rank's block of the input vector (distributed
    per :func:`input_vector_layout` for global length ``n_vector``);
    ``local_mask`` / ``local_field`` are aligned blocks of the mask and
    field arrays.

    ``plan`` executes a compiled :class:`~repro.core.plan.UnpackRankPlan`
    (the mask may then be ``None``); ``capture`` compiles one while
    running normally and returns it on the result.  Mutually exclusive.
    """
    if plan is not None and capture:
        raise ValueError("unpack_program: plan= and capture= are mutually exclusive")
    vector_block = np.asarray(vector_block)
    local_field = np.asarray(local_field)
    if local_field.shape != grid.local_shape:
        raise ValueError(f"rank {ctx.rank}: field block shape mismatch")
    scheme = config.scheme
    if scheme is Scheme.CMS:
        raise ValueError(
            "UNPACK supports SSS and CSS only (requests carry explicit ranks; "
            "the compact message scheme has no analogue — paper Section 7)"
        )
    costs = StepCosts(local=ctx.spec.local, scheme=scheme, d=grid.d)
    L = int(np.prod(grid.local_shape))
    compress = config.compress_requests and not scheme.stores_records

    if plan is not None:
        # ------------------ execute a compiled plan: replay the compile
        # prefix (ranking, request composition, the whole phase-A
        # exchange) and pick up at the serve stage with the recorded
        # request tables.
        size = plan.size
        if n_vector < size:
            raise ValueError(
                f"UNPACK vector of {n_vector} elements cannot fill {size} mask trues"
            )
        vec = input_vector_layout(n_vector, ctx.size, config)
        expected_block = vec.local_size(ctx.rank)
        if vector_block.shape != (expected_block,):
            raise ValueError(
                f"rank {ctx.rank}: vector block shape {vector_block.shape} != "
                f"({expected_block},) required by the input layout for "
                f"n_vector={n_vector}"
            )
        replay_charges(ctx, plan.charges, phase_prefix)
        e_i = plan.e_i
        positions = plan.positions
        elem_order = plan.elem_order
        request_order = list(plan.request_order)
        request_counts = plan.request_counts
        request_words = plan.request_words
        incoming: dict[int, Any] = plan.incoming
    else:
        local_mask = np.asarray(local_mask, dtype=bool)
        if local_mask.shape != grid.local_shape:
            raise ValueError(f"rank {ctx.rank}: mask block shape mismatch")
        recorder = ChargeRecorder(ctx) if capture else None
        t_compile = perf_counter() if capture else 0.0

        # -------------------------------------------------- stage 1: ranking
        ranking_result = yield from ranking_program(
            ctx,
            local_mask,
            grid,
            scheme=scheme,
            prs=config.prs,
            phase_prefix=f"{phase_prefix}.ranking",
        )
        size = ranking_result.size
        if n_vector < size:
            raise ValueError(
                f"UNPACK vector of {n_vector} elements cannot fill {size} mask trues"
            )
        vec = input_vector_layout(n_vector, ctx.size, config)
        expected_block = vec.local_size(ctx.rank)
        if vector_block.shape != (expected_block,):
            # Catch host/caller slicing errors before they turn into silent
            # truncation or reads of stale padding during the serve stage.
            raise ValueError(
                f"rank {ctx.rank}: vector block shape {vector_block.shape} != "
                f"({expected_block},) required by the input layout for "
                f"n_vector={n_vector}"
            )

        # ----------------------------------- stage 2A: compose rank requests
        ctx.phase(f"{phase_prefix}.requests")
        # Field values act as the placeholder "array"; only positions/ranks used.
        sel = extract_selected(local_field, local_mask, ranking_result, grid, vec)
        e_i = sel.count
        positions = sel.positions
        if not scheme.stores_records:
            view = slice_view(local_mask, grid)
            scan2 = int(slice_scan_lengths(view, config.early_exit_scan).sum())
            ctx.work(costs.second_scan(ranking_result.c, scan2))
        ctx.work(costs.unpack_requests(e_i, sel.segment_count))

        # Group ranks by owner.  Under a block input layout the owners of the
        # ascending ranks are already grouped (contiguous runs); a block-cyclic
        # input layout (``result_block``) revisits owners, so the elements are
        # grouped with one stable sort — preserving ascending-rank order within
        # each destination — and the permutation is remembered so the received
        # values can be scattered back in element order during placement.
        requests: dict[int, np.ndarray] = {}
        request_counts = {}
        request_order = []
        elem_order = None
        if e_i:
            dests = sel.dests
            if np.all(dests[1:] >= dests[:-1]):
                dests_g, ranks_g = dests, sel.ranks
                slices_g = sel.slice_ids
            else:
                elem_order = np.argsort(dests, kind="stable")
                dests_g = dests[elem_order]
                ranks_g = sel.ranks[elem_order]
                slices_g = sel.slice_ids[elem_order]
            bounds = np.concatenate(
                ([0], np.flatnonzero(dests_g[1:] != dests_g[:-1]) + 1, [e_i])
            )
            if compress:
                # Run-length encode: segments of consecutive ranks (the slice
                # property), shipped as (bases, lengths).  A segment breaks at
                # a destination or slice change, and — after grouping — at any
                # rank discontinuity (grouping can abut same-slice elements
                # whose ranks are a full tile apart).  Destination boundaries
                # always start a new segment, so per-destination segment runs
                # are contiguous slices of the global segment arrays.
                brk = np.ones(e_i, dtype=bool)
                if e_i > 1:
                    brk[1:] = (
                        (dests_g[1:] != dests_g[:-1])
                        | (slices_g[1:] != slices_g[:-1])
                        | (ranks_g[1:] != ranks_g[:-1] + 1)
                    )
                seg_starts = np.flatnonzero(brk)
                seg_ends = np.append(seg_starts[1:], e_i)
                # First segment of each destination chunk, by position.
                seg_of_dest = np.searchsorted(seg_starts, bounds).tolist()
            bounds_l = bounds.tolist()
            dest_l = dests_g[bounds[:-1]].tolist()
            for j, dest in enumerate(dest_l):
                a, b = bounds_l[j], bounds_l[j + 1]
                request_counts[dest] = b - a
                if compress:
                    sa, sb = seg_of_dest[j], seg_of_dest[j + 1]
                    requests[dest] = (
                        ranks_g[seg_starts[sa:sb]],
                        seg_ends[sa:sb] - seg_starts[sa:sb],
                    )
                else:
                    requests[dest] = ranks_g[a:b]
                request_order.append(dest)

        ctx.phase(f"{phase_prefix}.comm.request")
        if compress:
            words = {d: 2 * int(r[0].size) for d, r in requests.items()}
        else:
            words = {d: int(r.size) for d, r in requests.items()}
        request_words = sum(words.values())
        incoming = yield from exchange(
            ctx,
            requests,
            words=words,
            schedule=config.m2m_schedule,
            self_copy_charge=config.charge_self_copy,
            reliability=config.reliability,
        )

        if capture:
            phase_names = ranking_phase_names(grid.d, f"{phase_prefix}.ranking")
            phase_names.append(f"{phase_prefix}.requests")
            phase_names.append(f"{phase_prefix}.comm.request")
            captured = UnpackRankPlan(
                positions=positions,
                elem_order=elem_order,
                request_order=tuple(request_order),
                request_counts=dict(request_counts),
                request_words=request_words,
                incoming=dict(incoming),
                size=size,
                e_i=e_i,
                charges=recorder.finish(ctx, phase_names, phase_prefix),
                compile_wall=perf_counter() - t_compile,
            )

    request_set = set(request_order)

    # ------------------------------------------------- stage 2B: serve reads
    ctx.phase(f"{phase_prefix}.serve")
    replies: dict[int, np.ndarray] = {}
    served = 0
    for source in sorted(incoming):
        req = incoming[source]
        if compress:
            bases, lengths = req
            replies[source] = gather_segments(vector_block, bases, lengths, vec)
            served += int(replies[source].size)
            continue
        ranks_req = np.asarray(req)
        n_req = int(ranks_req.size)
        if n_req == 0:
            replies[source] = vector_block[:0]
        elif int(ranks_req[-1]) - int(ranks_req[0]) == n_req - 1:
            # One consecutive rank run addressed to this owner lives in
            # one block: serve it as a slice (view), not a gather.
            g0 = int(ranks_req[0])
            l0 = (g0 // vec.s) * vec.w + g0 % vec.w
            replies[source] = vector_block[l0 : l0 + n_req]
        else:
            replies[source] = vector_block[vec.locals_(ranks_req)]
        served += n_req
    ctx.work(costs.unpack_serve(served))

    # ------------------------------------------------ stage 2B': send replies
    ctx.phase(f"{phase_prefix}.comm.reply")
    P = ctx.size
    got_values: dict[int, np.ndarray] = {}
    if ctx.rank in replies:
        ctx.local_copy(int(replies[ctx.rank].size), charge=config.charge_self_copy)
        got_values[ctx.rank] = replies[ctx.rank]
    if config.reliability is not None:
        # The reply round rides the same reliable endpoint as the request
        # round; every rank we sent a request to owes us exactly one reply.
        from ..faults.reliable import ReliableEndpoint

        endpoint = ReliableEndpoint.of(ctx, config.reliability)
        got = yield from endpoint.exchange(
            {d: v for d, v in replies.items() if d != ctx.rank},
            {d: int(v.size) for d, v in replies.items()},
            expected={d for d in request_set if d != ctx.rank},
        )
        for src, payload in got.items():
            got_values[src] = np.asarray(payload)
    else:
        for k in range(1, P):
            dest = (ctx.rank + k) % P
            src = (ctx.rank - k) % P
            if dest in replies:
                ctx.send(
                    dest, replies[dest], words=int(replies[dest].size), tag=_TAG_REPLY
                )
            if src in request_set:
                msg = yield ctx.recv(source=src, tag=_TAG_REPLY)
                got_values[src] = np.asarray(msg.payload)

    if ctx.metrics is not None:
        # The READ pattern's two-phase volume: requests out, values served.
        ctx.count("unpack.calls")
        ctx.observe("unpack.requests_out", e_i)
        ctx.observe("unpack.request_words", request_words)
        ctx.observe("unpack.served", served)

    # -------------------------------------------------- stage 2C: placement
    ctx.phase(f"{phase_prefix}.place")
    # The output dtype is a pure function of the *global* vector and field
    # dtypes, which every rank's (possibly empty) blocks carry — deciding
    # it from local block sizes would let ranks disagree.
    out_dtype = np.result_type(vector_block.dtype, local_field.dtype)
    # Start from the field (one streaming copy) and scatter the received
    # values into the mask-true positions — equivalent to filling trues
    # then merging falses, without the two boolean-mask passes.
    out_flat = local_field.reshape(-1).astype(out_dtype, copy=True)
    for dest in request_order:
        vals = got_values[dest]
        if vals.size != request_counts[dest]:
            raise AssertionError(
                f"rank {ctx.rank}: reply size mismatch from {dest}"
            )
    if e_i:
        all_values = np.concatenate([got_values[d] for d in request_order])
        if elem_order is None:
            out_flat[positions] = all_values
        else:
            # Replies arrive grouped by destination; scatter them back to
            # the element order the grouping permuted away from.
            out_flat[positions[elem_order]] = all_values
    ctx.work(costs.unpack_place(e_i))

    # ------------------------------------------------ stage 2D: field merge
    # (The host-side merge already happened via the field-initialized
    # output; the simulated charge for the merge pass is unchanged.)
    ctx.phase(f"{phase_prefix}.merge")
    ctx.work(costs.field_merge(L))

    return UnpackLocal(
        array_block=out_flat.reshape(grid.local_shape),
        size=size,
        e_i=e_i,
        served=served,
        rank_plan=captured if capture else None,
    )
