"""The parallel PACK program (Sections 4.1, 6.1, 6.2).

Stage 1 ranks the selected elements (:mod:`repro.core.ranking`); stage 2
redistributes them to the block-distributed result vector with one
many-to-many personalized communication.  The configured scheme decides
what bookkeeping the ranking scan stores, whether a second local scan is
needed, and how messages are encoded — all of which show up as different
simulated-time charges and message volumes.

Phases charged (visible in ``RunResult.phase_breakdown()``):

=============================  ==========================================
``pack.ranking.initial``       local scan, in-slice ranks, PS_0/RS_0
``pack.ranking.prs.dim<i>``    prefix-reduction-sum along grid dim i
``pack.ranking.intermediate.dim<i>``  segmented local prefix sums
``pack.ranking.final``         base-rank collapse to PS_f
``pack.sendl``                 per-scheme rank/destination derivation
``pack.rescan``                CSS/CMS second scan of non-empty slices
``pack.compose``               message buffer construction
``pack.comm``                  many-to-many personalized communication
``pack.decompose``             receiver-side placement into V's block
=============================  ==========================================

The paper's "local computation" measurement corresponds to every phase
except ``pack.ranking.prs.*`` and ``pack.comm``; see
:func:`repro.core.api.local_computation_time`.

**Plan/execute split** (:mod:`repro.core.plan`): everything up to and
including ``pack.rescan`` depends only on the mask and the geometry —
never on the array data.  ``capture=True`` records that compile prefix
(index maps + exact charges) into a :class:`~repro.core.plan.PackRankPlan`
returned on ``PackLocal.rank_plan``; ``plan=<rank plan>`` replays it
instead of recomputing, then runs only compose/comm/decompose for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Generator

import numpy as np

from ..hpf.grid import GridLayout
from ..hpf.vector import VectorLayout
from ..machine.context import Context
from ..machine.m2m import exchange
from .costs import StepCosts
from .messages import (
    compose_pair_messages,
    compose_segment_messages,
    place_pair_message,
    place_segment_message,
)
from .plan import ChargeRecorder, PackRankPlan, replay_charges
from .ranking import (
    LocalRanking,
    ranking_phase_names,
    ranking_program,
    slice_scan_lengths,
    slice_view,
)
from .schemes import PackConfig, Scheme
from .storage import extract_selected, selected_from_plan

__all__ = ["PackLocal", "pack_program", "result_vector_layout"]


@dataclass
class PackLocal:
    """Per-rank outcome of the PACK program.

    Attributes
    ----------
    vector_block:
        this rank's block of the result vector.
    size:
        global result size (identical on every rank).
    e_i / e_a:
        selected elements sent from / received by this rank.
    gs / gr:
        message segments composed / decomposed (CMS; 0 otherwise).
    words_out:
        data words this rank contributed to the redistribution exchange.
    rank_plan:
        the compiled :class:`~repro.core.plan.PackRankPlan` when the run
        was invoked with ``capture=True``; ``None`` otherwise.
    """

    vector_block: np.ndarray
    size: int
    e_i: int
    e_a: int
    gs: int
    gr: int
    words_out: int
    rank_plan: PackRankPlan | None = None


def result_vector_layout(size: int, nprocs: int, config: PackConfig) -> VectorLayout:
    """Layout of the result vector: BLOCK unless ``config.result_block``
    forces a block-cyclic block size (Section 6.2 sensitivity knob)."""
    if config.result_block is None:
        return VectorLayout.block(size, nprocs)
    return VectorLayout.cyclic(size, nprocs, w=config.result_block)


def _check_vector_geometry(
    rank: int, size: int, n_result: int | None, pad_block
) -> None:
    """Up-front VECTOR-argument validation.

    Without it, a result vector longer than the packed data but no pad
    vector left the tail of the ``np.empty`` block uninitialized, only to
    die later in the received-element count check as a bare
    ``AssertionError`` — validate the geometry where it is decided and
    say which counts disagree.
    """
    if n_result is not None and n_result > size and pad_block is None:
        raise ValueError(
            f"rank {rank}: PACK's VECTOR has {n_result} elements but the "
            f"mask selects only {size}; positions {size}..{n_result - 1} "
            f"need a pad vector (pass pad_block= alongside n_result=)"
        )


def pack_program(
    ctx: Context,
    local_array: np.ndarray,
    local_mask: np.ndarray | None,
    grid: GridLayout,
    config: PackConfig,
    pad_block: np.ndarray | None = None,
    n_result: int | None = None,
    ranking_result: LocalRanking | None = None,
    phase_prefix: str = "pack",
    plan: PackRankPlan | None = None,
    capture: bool = False,
) -> Generator[Any, Any, PackLocal]:
    """SPMD PACK on one rank.  All ranks call together with aligned blocks.

    ``ranking_result`` may be supplied by a caller that already ranked the
    mask (the redistribution pre-passes do); otherwise the ranking stage
    runs here.

    ``pad_block`` / ``n_result`` implement Fortran 90's optional ``VECTOR``
    argument: the result vector has ``n_result`` elements (>= Size) and
    positions past the packed data take the pad vector's values.
    ``pad_block`` is this rank's block of the pad vector under the result
    layout for ``n_result`` elements.

    ``plan`` executes a compiled :class:`~repro.core.plan.PackRankPlan`
    (the mask may then be ``None`` — it is not consulted); ``capture``
    compiles one while running normally and returns it on the result.
    The two are mutually exclusive.
    """
    if plan is not None and capture:
        raise ValueError("pack_program: plan= and capture= are mutually exclusive")
    local_array = np.asarray(local_array)
    if local_array.shape != grid.local_shape:
        raise ValueError(
            f"rank {ctx.rank}: array block shape {local_array.shape} != "
            f"{grid.local_shape}"
        )
    scheme = config.scheme
    costs = StepCosts(local=ctx.spec.local, scheme=scheme, d=grid.d)

    if plan is not None:
        # ------------------------- execute a compiled plan: replay the
        # mask-dependent prefix (ranking/sendl/rescan), rebind the data.
        size = plan.size
        _check_vector_geometry(ctx.rank, size, n_result, pad_block)
        replay_charges(ctx, plan.charges, phase_prefix)
        vec = result_vector_layout(
            n_result if n_result is not None else size, ctx.size, config
        )
        sel = selected_from_plan(plan, local_array)
        e_i = sel.count
        gs = sel.segment_count if scheme.uses_segments else 0
    else:
        local_mask = np.asarray(local_mask, dtype=bool)
        if local_mask.shape != grid.local_shape:
            raise ValueError(
                f"rank {ctx.rank}: mask block shape {local_mask.shape} != "
                f"{grid.local_shape}"
            )
        recorder = ChargeRecorder(ctx) if capture else None
        t_compile = perf_counter() if capture else 0.0

        # ---------------------------------------------- stage 1: ranking
        if ranking_result is None:
            ranking_result = yield from ranking_program(
                ctx,
                local_mask,
                grid,
                scheme=scheme,
                prs=config.prs,
                phase_prefix=f"{phase_prefix}.ranking",
            )
        size = ranking_result.size
        if n_result is not None and n_result < size:
            raise ValueError(
                f"PACK's VECTOR has {n_result} elements but the mask selects {size}"
            )
        _check_vector_geometry(ctx.rank, size, n_result, pad_block)
        vec = result_vector_layout(n_result if n_result is not None else size,
                                   ctx.size, config)

        # ------------------------------ stage 2a: ranks and destinations
        ctx.phase(f"{phase_prefix}.sendl")
        sel = extract_selected(local_array, local_mask, ranking_result, grid, vec)
        e_i = sel.count
        gs = sel.segment_count if scheme.uses_segments else 0
        ctx.work(
            costs.final_rank_elements(
                C=ranking_result.c, E_i=e_i, Gs_i=sel.segment_count
            )
        )

        # ----------------------------- stage 2b: second scan (CSS/CMS)
        if not scheme.stores_records:
            ctx.phase(f"{phase_prefix}.rescan")
            view = slice_view(local_mask, grid)
            scan2 = int(slice_scan_lengths(view, config.early_exit_scan).sum())
            ctx.work(costs.second_scan(ranking_result.c, scan2))

        if capture:
            phase_names = ranking_phase_names(grid.d, f"{phase_prefix}.ranking")
            phase_names.append(f"{phase_prefix}.sendl")
            if not scheme.stores_records:
                phase_names.append(f"{phase_prefix}.rescan")
            captured = PackRankPlan(
                positions=sel.positions,
                ranks=sel.ranks,
                dests=sel.dests,
                slice_ids=sel.slice_ids,
                size=size,
                charges=recorder.finish(ctx, phase_names, phase_prefix),
                compile_wall=perf_counter() - t_compile,
            )

    # -------------------------------------------- stage 2c: message composition
    ctx.phase(f"{phase_prefix}.compose")
    if scheme.uses_segments:
        outgoing = compose_segment_messages(sel)
    else:
        outgoing = compose_pair_messages(sel)
    words = {dest: msg.words for dest, msg in outgoing.items()}
    ctx.work(costs.compose(e_i, gs))

    # --------------------------------- stage 2d: many-to-many communication
    ctx.phase(f"{phase_prefix}.comm")
    received = yield from exchange(
        ctx,
        outgoing,
        words=words,
        schedule=config.m2m_schedule,
        self_copy_charge=config.charge_self_copy,
        reliability=config.reliability,
    )

    # ----------------------------------------- stage 2e: placement into V
    ctx.phase(f"{phase_prefix}.decompose")
    block = np.empty(vec.local_size(ctx.rank), dtype=local_array.dtype)
    e_a = 0
    gr = 0
    for source in sorted(received):
        msg = received[source]
        if scheme.uses_segments:
            e_a += place_segment_message(block, msg, vec)
            gr += msg.segments
        else:
            e_a += place_pair_message(block, msg, vec)
    ctx.work(costs.decompose(e_a, gr))

    if ctx.metrics is not None:
        # Per-rank redistribution quantities of Section 6: elements sent /
        # received, message segments, and wire volume contributed.
        ctx.count("pack.calls")
        ctx.observe("pack.elements_out", e_i)
        ctx.observe("pack.elements_in", e_a)
        ctx.observe("pack.words_out", sum(words.values()))
        if scheme.uses_segments:
            ctx.observe("pack.segments_out", gs)

    if pad_block is None:
        expected = block.size
    else:
        # Fortran 90 VECTOR argument: local positions past the packed data
        # take the pad vector's values (a streaming local copy).
        my_globals = vec.globals_(ctx.rank)
        tail = my_globals >= size
        pad_block = np.asarray(pad_block)
        if pad_block.shape != block.shape:
            raise ValueError(
                f"rank {ctx.rank}: pad block shape {pad_block.shape} != "
                f"{block.shape}"
            )
        block[tail] = pad_block[tail]
        ctx.work(int(tail.sum()))
        expected = int((~tail).sum())
    if e_a != expected:
        raise AssertionError(
            f"rank {ctx.rank}: received {e_a} elements, expected {expected}"
        )

    return PackLocal(
        vector_block=block,
        size=size,
        e_i=e_i,
        e_a=e_a,
        gs=gs,
        gr=gr,
        words_out=sum(words.values()),
        rank_plan=captured if capture else None,
    )
