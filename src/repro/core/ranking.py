"""The parallel ranking algorithm (Section 5 of the paper).

Given a mask array ``M`` distributed block-cyclic over a processor grid,
compute the global rank of every mask-true element — its position in the
packed result vector — **without moving any array data**.  Three steps:

1. **Initial step (local scan)** — walk the local mask slice by slice (a
   slice is ``W_0`` consecutive dimension-0 elements), assign each
   selected element its in-slice rank, and record the per-slice counts in
   the dimension-0 working arrays ``PS_0``/``RS_0``.

2. **Intermediate steps** — for each dimension ``i`` from 0 to ``d-1``
   (Figure 2): a vector prefix-reduction-sum along the grid's dimension-i
   processors turns per-tile counts into cross-processor base ranks
   (``PS_i``) and totals (``RS_i``); a segmented local prefix sum extends
   the rank validity from one tile to a whole dimension-(i+1) block; the
   per-tile totals of dimension ``i+1`` initialize ``PS_{i+1}``/``RS_{i+1}``.
   After step ``i`` the ranks in ``PS_i`` are valid within sub-arrays of
   shape ``[1 x .. x 1 x W_{i+1} x N_i x .. x N_0]``.

3. **Final step** — collapse the ``d`` base-rank arrays downward
   (``PS_i += expand(PS_{i+1})``), producing the final base-rank array
   ``PS_f`` indexed by (higher local coordinates, dimension-0 tile); the
   rank of a selected element is its in-slice rank plus the ``PS_f`` entry
   of its slice.  The grand total ``Size`` falls out of step ``d-1``.

The per-rank numpy implementation is fully vectorized; simulated time is
charged per the Figure 2 complexity lines via
:class:`~repro.core.costs.StepCosts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ..collectives.prefix import prefix_reduction_sum
from ..hpf.grid import GridLayout
from ..machine.context import Context
from .costs import StepCosts
from .schemes import Scheme

__all__ = [
    "LocalRanking",
    "ranking_phase_names",
    "ranking_program",
    "slice_view",
    "slice_scan_lengths",
]


def ranking_phase_names(d: int, prefix: str = "ranking") -> list[str]:
    """The ranking stage's phase labels, in execution order.

    This is the canonical compile-prefix phase list the plan/execute
    split records and replays (:mod:`repro.core.plan`): every phase
    :func:`ranking_program` switches through, exactly once each, in
    program order.
    """
    names = [f"{prefix}.initial"]
    for i in range(d):
        names.append(f"{prefix}.prs.dim{i}")
        names.append(f"{prefix}.intermediate.dim{i}")
    names.append(f"{prefix}.final")
    return names


def slice_view(local_mask: np.ndarray, grid: GridLayout) -> np.ndarray:
    """View the local mask with dimension 0 split into (tile, within-block):
    shape ``(L_{d-1}, ..., L_1, T_0, W_0)``."""
    dim0 = grid.dims[0]
    return local_mask.reshape(local_mask.shape[:-1] + (dim0.t, dim0.w))


def slice_scan_lengths(view: np.ndarray, early_exit: bool) -> np.ndarray:
    """Elements touched when re-scanning each slice for its selected values.

    ``view`` is the slice view (bool); the result has the slice shape
    (``view.shape[:-1]``).  With early exit (the paper's scanning method 1)
    a non-empty slice is scanned up to its last true element; method 2
    always scans the whole slice.  Empty slices are never scanned (both
    methods check the counter array first).
    """
    w0 = view.shape[-1]
    any_true = view.any(axis=-1)
    if not early_exit:
        return np.where(any_true, w0, 0).astype(np.int64)
    # Last true position + 1, vectorized: index of last true via reversed argmax.
    rev_argmax = np.argmax(view[..., ::-1], axis=-1)
    last_pos = w0 - 1 - rev_argmax
    return np.where(any_true, last_pos + 1, 0).astype(np.int64)


@dataclass
class LocalRanking:
    """Per-rank outcome of the ranking stage.

    Attributes
    ----------
    ps_f:
        final base-rank array ``PS_f`` of shape
        ``(L_{d-1}, ..., L_1, T_0)``: the global rank of the *first*
        selected element of each slice, valid for slices that contain any.
    slice_counts:
        the counter array ``PS_c`` (same shape): selected elements per
        slice.
    initial:
        in-slice exclusive ranks, shaped like the slice view
        ``(..., T_0, W_0)`` (meaningful where the mask is true).
    size:
        the global ``Size`` (identical on every rank).
    e_i:
        number of selected elements on this rank (``sum(slice_counts)``).
    """

    ps_f: np.ndarray
    slice_counts: np.ndarray
    initial: np.ndarray
    size: int
    e_i: int

    @property
    def c(self) -> int:
        """Number of local slices (the paper's ``C``)."""
        return int(self.slice_counts.size)

    def element_ranks(self, local_shape: tuple[int, ...]) -> np.ndarray:
        """Global rank of every local element (garbage where mask false).

        Shape is the local block shape; combine with the mask to extract
        the selected elements' ranks.
        """
        full = self.initial + self.ps_f[..., None]
        return full.reshape(local_shape)

    def masked_element_ranks(
        self, local_mask: np.ndarray, local_shape: tuple[int, ...]
    ) -> np.ndarray:
        """Global rank of every local element, ``-1`` where the mask is
        false — the per-rank array the host-level ranking API gathers
        (and the plan cache stores verbatim)."""
        ranks = self.element_ranks(local_shape)
        return np.where(np.asarray(local_mask, dtype=bool), ranks, -1)

    def slice_base_ranks(self) -> np.ndarray:
        """Alias for ``ps_f`` under its paper meaning."""
        return self.ps_f


def ranking_program(
    ctx: Context,
    local_mask: np.ndarray,
    grid: GridLayout,
    scheme: Scheme = Scheme.CSS,
    prs: str = "auto",
    phase_prefix: str = "ranking",
) -> Generator[Any, Any, LocalRanking]:
    """SPMD generator computing the ranking stage on one rank.

    ``local_mask`` is this rank's local block of the mask array (bool,
    shape ``grid.local_shape``).  All ranks must call this together.  The
    ``scheme`` only affects cost charging (SSS stores bookkeeping during
    the scan; CSS/CMS copy the counter array); the numeric results are
    identical.

    Returns a :class:`LocalRanking`.
    """
    local_mask = np.asarray(local_mask, dtype=bool)
    if local_mask.shape != grid.local_shape:
        raise ValueError(
            f"rank {ctx.rank}: mask block shape {local_mask.shape} != "
            f"{grid.local_shape}"
        )
    d = grid.d
    costs = StepCosts(local=ctx.spec.local, scheme=scheme, d=d)
    coords = grid.coords_of_rank(ctx.rank)
    L = int(np.prod(grid.local_shape))

    # ----------------------------------------------- 1. initial local scan
    ctx.phase(f"{phase_prefix}.initial")
    view = slice_view(local_mask, grid)
    inclusive = np.cumsum(view, axis=-1, dtype=np.int64)
    initial = inclusive - view  # exclusive in-slice ranks
    counts = inclusive[..., -1]  # selected per slice: PS_0 = RS_0
    e_i = int(counts.sum())
    ctx.work(costs.initial_scan(L, e_i))

    slice_counts = counts.copy()
    ctx.work(costs.counter_copy(slice_counts.size))

    # Dimension-0 working arrays: collapse the W_0 axis -> (..., T_0).
    ps = counts.astype(np.int64)
    base_ranks: list[np.ndarray] = []
    size = -1

    # ------------------------------------------- 2. intermediate steps 0..d-1
    for i in range(d):
        ctx.phase(f"{phase_prefix}.prs.dim{i}")
        dim = grid.dims[i]
        group = grid.group_along(i, coords)
        if ctx.metrics is not None:
            # PRS round structure: one call per grid dimension, fan-in =
            # participating ranks, payload = working-array words.
            ctx.count("ranking.prs_calls")
            ctx.observe("ranking.prs_fanin", len(group))
            ctx.observe("ranking.prs_words", int(ps.size))
        if len(group) > 1:
            result = yield from prefix_reduction_sum(
                ctx, ps.ravel(), group=group, algorithm=prs
            )
            prefix = result.prefix.reshape(ps.shape)
            reduction = result.reduction.reshape(ps.shape)
        else:
            prefix = np.zeros_like(ps)
            reduction = ps
        ps = prefix
        rs = reduction.astype(np.int64, copy=True)

        ctx.phase(f"{phase_prefix}.intermediate.dim{i}")
        if i < d - 1:
            dim_next = grid.dims[i + 1]
            t_next, w_next = dim_next.t, dim_next.w
            head = rs.shape[:-2]  # (L_{d-1}, ..., L_{i+2})
            t_i = rs.shape[-1]
            seg_view = rs.reshape(head + (t_next, w_next, t_i))
            # Substep 2.1: raw totals at the last (row, tile) of each
            # dimension-(i+1) tile, before the scan.
            rs_next_raw = seg_view[..., :, -1, -1].copy()
            # Substep 2.3: segmented exclusive prefix sum, one segment per
            # dimension-(i+1) tile, running over (within-tile row, dim-i
            # tile) in row-major order.
            flat = seg_view.reshape(head + (t_next, w_next * t_i))
            inc = np.cumsum(flat, axis=-1)
            exc = inc - flat
            # Substep 2.4: fold the scanned totals into the base ranks.
            ps = ps + exc.reshape(ps.shape)
            # Substep 3.1: per-tile totals initialize the next dimension's
            # working arrays (PS_{i+1} = RS_{i+1} = tile totals).
            tile_totals = rs_next_raw + exc[..., :, -1]
            ctx.work(costs.intermediate_local(rs.size + tile_totals.size))
            base_ranks.append(ps)
            ps = tile_totals
        else:
            # Step d-1: one segment; Size falls out.
            rs_flat = rs.ravel()
            size_raw = int(rs_flat[-1])
            inc = np.cumsum(rs_flat)
            exc = inc - rs_flat
            ps = ps + exc.reshape(ps.shape)
            size = size_raw + int(exc[-1])
            ctx.work(costs.intermediate_local(rs.size))
            base_ranks.append(ps)

    # --------------------------------------------------- 3. final collapse
    ctx.phase(f"{phase_prefix}.final")
    collapse_elems = 0
    for i in range(d - 2, -1, -1):
        w_next = grid.dims[i + 1].w
        expanded = np.repeat(base_ranks[i + 1], w_next, axis=-1)
        base_ranks[i] = base_ranks[i] + expanded[..., None]
        collapse_elems += base_ranks[i].size
    ps_f = base_ranks[0]
    # The final step is Theta(C + alpha) even for rank-1 arrays (one pass
    # over PS_f), so the PS_f pass is charged unconditionally.
    ctx.work(costs.final_collapse(collapse_elems + ps_f.size))
    if ctx.metrics is not None:
        ctx.count("ranking.calls")
        ctx.observe("ranking.selected", e_i)

    return LocalRanking(
        ps_f=ps_f,
        slice_counts=slice_counts,
        initial=initial,
        size=size,
        e_i=e_i,
    )
