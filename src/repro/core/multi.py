"""Gang PACK: many arrays, one mask, one ranking.

HPF programs routinely pack several attribute arrays under the same mask
(`xs = PACK(x, alive); vs = PACK(v, alive); qs = PACK(q, alive)`), and a
good runtime ranks the mask *once*: the ranking stage (and for the
compact schemes the second scan's bookkeeping) depends only on the mask,
so k packs share one ranking, one send-vector derivation and one count
detection — only the per-array message composition, data exchange and
placement repeat.

:func:`pack_many_program` / :func:`pack_many` implement that amortization;
``tests/core/test_multi.py`` checks both the results (each vector equals
its solo PACK) and the economics (k gang-packed arrays cost well under k
solo packs).

With the plan/execute split (:mod:`repro.core.plan`) the gang's
amortization is the special case k-arrays-one-call of the general plan
cache: the gang's compile prefix is *identical* to solo PACK's (same
phases, same charges, prefix-relative names), so a plan compiled by
``pack`` replays under the gang's ``gang.*`` phases and vice versa —
``pack_many(plan_cache=...)`` shares entries with ``pack(plan_cache=...)``
for the same mask and geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Generator, Sequence

import numpy as np

from ..hpf.grid import GridLayout
from ..machine.context import Context
from ..machine.m2m import exchange
from .costs import StepCosts
from .messages import (
    compose_pair_messages,
    compose_segment_messages,
    decompose_pair_message,
    decompose_segment_message,
)
from .plan import ChargeRecorder, PackRankPlan, Plan, plan_key, replay_charges
from .plan_cache import resolve_plan_cache
from .ranking import (
    ranking_phase_names,
    ranking_program,
    slice_scan_lengths,
    slice_view,
)
from .schemes import PackConfig
from .storage import SelectedElements, extract_selected, selected_from_plan
from .pack import result_vector_layout

__all__ = ["PackManyLocal", "pack_many_program", "pack_many"]

_GANG_TAG_BASE = 910


@dataclass
class PackManyLocal:
    """Per-rank outcome of a gang PACK."""

    vector_blocks: list[np.ndarray]
    size: int
    e_i: int
    rank_plan: PackRankPlan | None = None


def _replace_values(sel: SelectedElements, local_array: np.ndarray) -> SelectedElements:
    """The selected-element vectors for another array under the same mask:
    everything but the values is mask-derived and reused as-is."""
    return SelectedElements(
        positions=sel.positions,
        values=np.asarray(local_array).ravel()[sel.positions],
        ranks=sel.ranks,
        dests=sel.dests,
        slice_ids=sel.slice_ids,
    )


def pack_many_program(
    ctx: Context,
    local_arrays: Sequence[np.ndarray],
    local_mask: np.ndarray | None,
    grid: GridLayout,
    config: PackConfig,
    phase_prefix: str = "gang",
    plan: PackRankPlan | None = None,
    capture: bool = False,
) -> Generator[Any, Any, PackManyLocal]:
    """SPMD gang PACK on one rank: k arrays, one mask, one ranking.

    ``plan`` / ``capture`` are the plan/execute hooks shared with
    :func:`~repro.core.pack.pack_program` — the gang's compile prefix is
    PACK's, so the same :class:`~repro.core.plan.PackRankPlan` serves both.
    """
    if plan is not None and capture:
        raise ValueError(
            "pack_many_program: plan= and capture= are mutually exclusive"
        )
    scheme = config.scheme
    costs = StepCosts(local=ctx.spec.local, scheme=scheme, d=grid.d)

    if plan is not None:
        # Execute a compiled plan: replay the shared prefix under this
        # program's phase labels, rebind the first array's data.
        size = plan.size
        replay_charges(ctx, plan.charges, phase_prefix)
        vec = result_vector_layout(size, ctx.size, config)
        sel0 = selected_from_plan(plan, np.asarray(local_arrays[0]))
        e_i = sel0.count
        gs = sel0.segment_count if scheme.uses_segments else 0
    else:
        local_mask = np.asarray(local_mask, dtype=bool)
        recorder = ChargeRecorder(ctx) if capture else None
        t_compile = perf_counter() if capture else 0.0

        # ---------------------------------------------- shared: ranking once
        ranking_result = yield from ranking_program(
            ctx, local_mask, grid,
            scheme=scheme, prs=config.prs,
            phase_prefix=f"{phase_prefix}.ranking",
        )
        size = ranking_result.size
        vec = result_vector_layout(size, ctx.size, config)

        ctx.phase(f"{phase_prefix}.sendl")
        sel0 = extract_selected(
            np.asarray(local_arrays[0]), local_mask, ranking_result, grid, vec
        )
        e_i = sel0.count
        gs = sel0.segment_count if scheme.uses_segments else 0
        ctx.work(costs.final_rank_elements(ranking_result.c, e_i, sel0.segment_count))
        if not scheme.stores_records:
            ctx.phase(f"{phase_prefix}.rescan")
            view = slice_view(local_mask, grid)
            scan2 = int(slice_scan_lengths(view, config.early_exit_scan).sum())
            ctx.work(costs.second_scan(ranking_result.c, scan2))

        if capture:
            phase_names = ranking_phase_names(grid.d, f"{phase_prefix}.ranking")
            phase_names.append(f"{phase_prefix}.sendl")
            if not scheme.stores_records:
                phase_names.append(f"{phase_prefix}.rescan")
            captured = PackRankPlan(
                positions=sel0.positions,
                ranks=sel0.ranks,
                dests=sel0.dests,
                slice_ids=sel0.slice_ids,
                size=size,
                charges=recorder.finish(ctx, phase_names, phase_prefix),
                compile_wall=perf_counter() - t_compile,
            )

    # ------------------------------------------- per array: move the data
    blocks: list[np.ndarray] = []
    for k, local_array in enumerate(local_arrays):
        local_array = np.asarray(local_array)
        if local_array.shape != grid.local_shape:
            raise ValueError(
                f"rank {ctx.rank}: array {k} block shape {local_array.shape} "
                f"!= {grid.local_shape}"
            )
        sel = sel0 if k == 0 else _replace_values(sel0, local_array)

        ctx.phase(f"{phase_prefix}.compose.{k}")
        if scheme.uses_segments:
            outgoing = compose_segment_messages(sel)
        else:
            outgoing = compose_pair_messages(sel)
        words = {dest: msg.words for dest, msg in outgoing.items()}
        ctx.work(costs.compose(e_i, gs))

        ctx.phase(f"{phase_prefix}.comm.{k}")
        received = yield from exchange(
            ctx, outgoing, words=words,
            schedule=config.m2m_schedule,
            self_copy_charge=config.charge_self_copy,
            tag=_GANG_TAG_BASE + k,
            reliability=config.reliability,
        )

        ctx.phase(f"{phase_prefix}.decompose.{k}")
        block = np.empty(vec.local_size(ctx.rank), dtype=local_array.dtype)
        e_a = 0
        gr = 0
        for source in sorted(received):
            msg = received[source]
            if scheme.uses_segments:
                pos, vals = decompose_segment_message(msg, vec)
                gr += msg.segments
            else:
                pos, vals = decompose_pair_message(msg, vec)
            block[pos] = vals
            e_a += int(vals.size)
        ctx.work(costs.decompose(e_a, gr))
        blocks.append(block)

    return PackManyLocal(
        vector_blocks=blocks,
        size=size,
        e_i=e_i,
        rank_plan=captured if capture else None,
    )


def pack_many(
    arrays: Sequence[np.ndarray],
    mask: np.ndarray,
    grid,
    block=None,
    scheme="cms",
    spec=None,
    validate: bool = True,
    faults=None,
    plan_cache=None,
    backend="sim",
    tracer=None,
    metrics=None,
    **config_kw,
):
    """Host-level gang PACK: returns (list of packed vectors, RunResult).

    Each returned vector equals ``PACK(arrays[k], mask)`` exactly; the
    simulated cost amortizes the mask-dependent stages across the gang.
    ``faults`` injects a :class:`~repro.faults.FaultPlan`; pass
    ``reliability=True`` (forwarded to :class:`PackConfig`) alongside it
    to keep the gang exchanges correct under message faults.

    ``plan_cache`` (``True`` / a :class:`~repro.core.plan_cache.PlanCache`)
    compiles the mask-dependent prefix into a plan keyed as ``op="pack"``
    — shared with :func:`repro.core.api.pack` — and replays it on repeat
    calls with the same mask and geometry.

    ``backend`` runs the gang on any execution backend (``"sim"`` /
    ``"mp"`` / ``"supervised"`` / a :class:`~repro.runtime.Backend`
    instance), exactly like :func:`repro.core.api.pack` — this is the
    batching seam ``repro.serve`` coalesces concurrent requests through.
    """
    from ..machine.spec import CM5
    from ..runtime.base import get_backend
    from ..serial.reference import pack_reference

    if not arrays:
        raise ValueError("pack_many needs at least one array")
    mask = np.asarray(mask, dtype=bool)
    if isinstance(grid, int):
        grid = (grid,)
    layout = GridLayout.create(mask.shape, grid, block)
    config = PackConfig(scheme=scheme, **config_kw)
    spec_obj = spec if spec is not None else CM5
    exec_backend = get_backend(backend)
    exec_backend.reject_unsupported(faults=faults, reliability=config.reliability)

    cache = resolve_plan_cache(plan_cache)
    if faults is not None or config.reliability:
        # Fault injection / reliable transport perturb the charges the
        # plan would replay; never cache those runs.
        cache = None
    cached_plan = None
    capture = False
    if cache is not None:
        key = plan_key(
            "pack", layout, config, mask,
            n_result=None, spec=spec_obj.name,
            time_domain=exec_backend.time_domain,
        )
        cached_plan = cache.get(key)
        capture = cached_plan is None

    # Each rank slices only its own blocks out of the shared arrays (views
    # in-process; shared-memory slices under "mp").  On a plan hit the mask
    # stays on the host.
    nk = len(arrays)
    shared = {f"array_{k}": np.asarray(a) for k, a in enumerate(arrays)}
    if cached_plan is None:
        shared["mask"] = mask
    rank_plans = cached_plan.ranks if cached_plan is not None else None

    def _rank_args(r, sh):
        blocks = [
            layout.local_block(sh[f"array_{k}"], r, copy=False)
            for k in range(nk)
        ]
        mask_block = (
            layout.local_block(sh["mask"], r, copy=False)
            if rank_plans is None else None
        )
        plan_r = rank_plans[r] if rank_plans is not None else None
        return (blocks, mask_block, layout, config, "gang", plan_r, capture)

    run = exec_backend.run_spmd(
        pack_many_program,
        layout.nprocs,
        make_rank_args=_rank_args,
        shared=shared,
        spec=spec_obj,
        tracer=tracer,
        metrics=metrics,
        faults=faults,
    )
    if capture:
        cache.put(key, Plan(
            key=key,
            ranks=[run.results[r].rank_plan for r in range(layout.nprocs)],
        ))
    size = run.results[0].size
    vec = result_vector_layout(size, layout.nprocs, config)
    vectors = [
        vec.gather([run.results[r].vector_blocks[k] for r in range(layout.nprocs)],
                   dtype=np.asarray(arrays[k]).dtype)
        for k in range(len(arrays))
    ]
    if validate:
        for k, a in enumerate(arrays):
            expected = pack_reference(np.asarray(a), mask)
            if not np.array_equal(vectors[k], expected):
                raise AssertionError(f"gang PACK mismatch on array {k}")
    return vectors, run
