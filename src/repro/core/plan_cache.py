"""Bounded-LRU cache of compiled redistribution plans.

The cache is keyed by the full :class:`~repro.core.plan.PlanKey` —
geometry, scheme knobs, machine profile, time domain, and the mask
fingerprint — so "same geometry, different mask" can never reuse stale
ranks: a flipped mask bit changes the fingerprint, which is a different
key, which is a miss.

Counters (hits / misses / evictions) are always tracked on the cache and
additionally mirrored into the process-global metrics registry
(``plan_cache.hit`` / ``plan_cache.miss`` / ``plan_cache.evict``) when
one is enabled, so ``repro metrics`` style tooling sees cache behaviour
without new plumbing.  The cache is lock-protected: the service layer
(ROADMAP) will share one across concurrent requests.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from .plan import Plan, PlanKey

__all__ = [
    "PlanCache",
    "PlanCacheStats",
    "default_plan_cache",
    "reset_default_plan_cache",
    "resolve_plan_cache",
]


def _global_metrics():
    from ..obs.registry import current_global_metrics

    return current_global_metrics()


@dataclass(frozen=True)
class PlanCacheStats:
    """Point-in-time cache counters."""

    hits: int
    misses: int
    evictions: int
    entries: int
    nbytes: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} entries={self.entries} "
            f"bytes={self.nbytes} hit_rate={self.hit_rate:.2%}"
        )


class PlanCache:
    """LRU cache of :class:`~repro.core.plan.Plan` bounded by entry count
    and (optionally) total plan bytes.

    ``capacity`` bounds the number of plans; ``max_bytes`` (when given)
    additionally evicts least-recently-used plans until the summed
    ``Plan.nbytes`` fits.  A single plan larger than ``max_bytes`` is
    still cached alone — refusing it would make the cache silently
    useless for big workloads.
    """

    def __init__(self, capacity: int = 32, max_bytes: int | None = None):
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"plan cache max_bytes must be >= 1, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: OrderedDict[PlanKey, Plan] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ---------------------------------------------------------------- access
    def get(self, key: PlanKey) -> Plan | None:
        """Look up a plan; counts a hit or miss and refreshes recency."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
        m = _global_metrics()
        if m is not None:
            m.inc("plan_cache.hit" if plan is not None else "plan_cache.miss")
        return plan

    def put(self, key: PlanKey, plan: Plan) -> None:
        """Insert (or refresh) a plan, evicting LRU entries over budget."""
        evicted = 0
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            if self.max_bytes is not None:
                while (len(self._entries) > 1
                       and self._nbytes_locked() > self.max_bytes):
                    self._entries.popitem(last=False)
                    evicted += 1
            self._evictions += evicted
        if evicted:
            m = _global_metrics()
            if m is not None:
                m.inc("plan_cache.evict", evicted)

    def peek(self, key: PlanKey) -> Plan | None:
        """Look up without touching recency or counters (introspection)."""
        with self._lock:
            return self._entries.get(key)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[PlanKey]:
        with self._lock:
            return list(self._entries.keys())

    # ----------------------------------------------------------- persistence
    SCHEMA = 1

    def save(self, path: str | os.PathLike) -> int:
        """Persist every cached plan to ``path`` as JSON; returns the count.

        Entries are written least-recently-used first, so :meth:`load` /
        :meth:`load_into` re-inserting them in file order reproduces the
        recency ranking.  The write goes through a same-directory temp
        file + ``os.replace`` so a crash mid-save never leaves a torn
        cache file for the next service start to choke on.
        """
        with self._lock:
            plans = [p.to_dict() for p in self._entries.values()]
        doc = {"schema": self.SCHEMA, "plans": plans}
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as f:
            json.dump(doc, f)
        os.replace(tmp, path)
        return len(plans)

    def load_into(self, path: str | os.PathLike) -> int:
        """Merge the plans persisted at ``path`` into this cache; returns
        how many were inserted.  Normal LRU bounds apply, so loading more
        plans than ``capacity`` keeps only the most recent tail."""
        with open(os.fspath(path)) as f:
            doc = json.load(f)
        schema = doc.get("schema")
        if schema != self.SCHEMA:
            raise ValueError(
                f"plan cache file {path!r}: unsupported schema {schema!r} "
                f"(expected {self.SCHEMA})"
            )
        count = 0
        for entry in doc["plans"]:
            plan = Plan.from_dict(entry)
            self.put(plan.key, plan)
            count += 1
        return count

    @classmethod
    def load(
        cls, path: str | os.PathLike,
        capacity: int = 32, max_bytes: int | None = None,
    ) -> "PlanCache":
        """A fresh cache populated from a :meth:`save` file."""
        cache = cls(capacity=capacity, max_bytes=max_bytes)
        cache.load_into(path)
        return cache

    # ----------------------------------------------------------------- stats
    def _nbytes_locked(self) -> int:
        return sum(p.nbytes for p in self._entries.values())

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                nbytes=self._nbytes_locked(),
            )

    def __repr__(self) -> str:
        return f"PlanCache({self.stats().describe()})"


# ------------------------------------------------------------- default cache
_DEFAULT: PlanCache | None = None
_DEFAULT_LOCK = threading.Lock()


def default_plan_cache() -> PlanCache:
    """The process-wide shared cache (``plan_cache=True`` / CLI
    ``--plan-cache on``), created on first use."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = PlanCache()
        return _DEFAULT


def reset_default_plan_cache() -> None:
    """Drop the process-wide cache (tests; fork hygiene)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = None


def resolve_plan_cache(plan_cache) -> PlanCache | None:
    """Normalize the host-level ``plan_cache=`` argument.

    ``None`` / ``False`` / ``"off"`` → caching disabled (the default —
    seed behaviour); ``True`` / ``"on"`` / ``"default"`` → the shared
    :func:`default_plan_cache`; a :class:`PlanCache` instance → itself.
    """
    if plan_cache is None or plan_cache is False or plan_cache == "off":
        return None
    if plan_cache is True or plan_cache in ("on", "default"):
        return default_plan_cache()
    if isinstance(plan_cache, PlanCache):
        return plan_cache
    raise ValueError(
        f"plan_cache must be None/False/'off', True/'on'/'default' or a "
        f"PlanCache instance, got {plan_cache!r}"
    )
