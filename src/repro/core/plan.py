"""Compiled redistribution plans: the plan/execute split.

The expensive bookkeeping of PACK/UNPACK — ranking, send-vector
derivation, message segmentation, the CSS/CMS rescan — depends only on
(shape, distribution, processor grid, scheme knobs, mask), never on the
array *data*.  This module factors that bookkeeping into a serializable
:class:`Plan` that any backend executes:

* **compile** — run the normal program once with ``capture=True``; each
  rank wraps its mask-dependent prefix in a :class:`ChargeRecorder` and
  returns a per-rank plan entry (index maps, destination schedules,
  request tables) plus the exact simulated-time charges of the prefix.
* **execute** — run the program again with ``plan=<rank entry>``; the
  prefix is *replayed* (phases and charges restored bit-for-bit in the
  simulated domain; skipped outright in the wall domain, where the saved
  recompute is the point) and only the data movement happens for real.

Replay keeps a cache-hit run's :class:`~repro.machine.stats.RunResult`
bit-identical to the cache-miss run under the simulator: per-phase times,
the final clock, op counts and message counters are restored to the
recorded values before the real phases resume, so every later event fires
at exactly the original simulated timestamp.  Under the wall-clock
backends the replay is a no-op and the compile phases genuinely cost ~0.

Plans serialize to plain JSON (:meth:`Plan.to_dict`; numpy arrays as
``{"dtype", "shape", "data": base64}`` blobs) so they can be inspected
(``repro plan``), shipped to warm gangs, or persisted.  Grounding: Rink
et al., *Memory-efficient array redistribution through portable
collective communication* — redistribution as a portable plan decoupled
from the transport that runs it.
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = [
    "ChargeRecorder",
    "CompileCharges",
    "Plan",
    "PlanKey",
    "RankingRankPlan",
    "PackRankPlan",
    "Red1RankPlan",
    "Red2RankPlan",
    "UnpackRankPlan",
    "mask_fingerprint",
    "plan_key",
    "replay_charges",
]


# ------------------------------------------------------------ fingerprinting
def mask_fingerprint(mask: np.ndarray) -> str:
    """Content hash of a mask: blake2b over the shape and the packed bits.

    Two masks share a fingerprint iff they have the same shape and the
    same truth values — the exact condition under which every
    mask-derived plan artifact (ranks, destinations, segments, request
    tables) is identical.  Layout and scheme knobs are *not* part of the
    fingerprint; they live in the :class:`PlanKey` next to it.
    """
    m = np.ascontiguousarray(np.asarray(mask, dtype=bool))
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(m.shape).encode())
    h.update(np.packbits(m).tobytes())
    return h.hexdigest()


# ------------------------------------------------------------------ plan key
@dataclass(frozen=True)
class PlanKey:
    """Geometry + configuration + mask identity of one compiled plan.

    ``dims`` is the full ``(N, P, W)`` triple per paper dimension — it
    covers the array shape, the processor grid *and* the block sizes in
    one hashable tuple.  ``n_result`` is PACK's VECTOR length (``None``
    when the result is exactly Size) or UNPACK's input-vector length.
    ``spec`` / ``time_domain`` pin the cost model: charges recorded under
    one machine profile or clock domain are never replayed under another.
    """

    op: str
    dims: tuple[tuple[int, int, int], ...]
    nprocs: int
    scheme: str
    prs: str
    m2m_schedule: str
    early_exit_scan: bool
    charge_self_copy: bool
    result_block: int | None
    compress_requests: bool
    n_result: int | None
    spec: str
    time_domain: str
    fingerprint: str

    def describe(self) -> str:
        shape = tuple(n for n, _, _ in self.dims)
        grid = tuple(p for _, p, _ in self.dims)
        return (
            f"{self.op} shape={shape} grid={grid} P={self.nprocs} "
            f"scheme={self.scheme} result_block={self.result_block} "
            f"mask={self.fingerprint[:12]}"
        )


def plan_key(
    op: str,
    layout,
    config,
    mask: np.ndarray,
    n_result: int | None = None,
    spec: str = "?",
    time_domain: str = "simulated",
) -> PlanKey:
    """Build the cache key for one host-level call.

    ``layout`` is the :class:`~repro.hpf.grid.GridLayout` the program will
    run under (post-padding, so the fingerprint is taken over exactly the
    mask the ranks see); ``config`` the :class:`~repro.core.schemes.PackConfig`.
    """
    return PlanKey(
        op=op,
        dims=tuple((d.n, d.p, d.w) for d in layout.dims),
        nprocs=layout.nprocs,
        scheme=config.scheme.value,
        prs=config.prs,
        m2m_schedule=config.m2m_schedule,
        early_exit_scan=config.early_exit_scan,
        charge_self_copy=config.charge_self_copy,
        result_block=config.result_block,
        compress_requests=config.compress_requests,
        n_result=n_result,
        spec=spec,
        time_domain=time_domain,
        fingerprint=mask_fingerprint(mask),
    )


# ----------------------------------------------------------- charge recording
@dataclass(frozen=True)
class CompileCharges:
    """Exact per-rank bookkeeping of a compile prefix, for replay.

    ``phases`` holds ``(relative name, seconds, ops)`` in execution order
    — names are stored *relative* to the program's phase prefix so one
    plan replays under any prefix (``pack.*``, ``gang.*``).  The scalar
    fields are the rank's absolute totals at the end of the prefix (the
    prefix starts at clock 0), assigned directly on replay so float
    re-summation cannot drift even by one ULP.
    """

    phases: tuple[tuple[str, float, float], ...]
    clock: float
    local_ops: float
    idle_time: float
    sends: int
    recvs: int
    words_sent: int
    words_received: int
    ctrl_ops: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "phases": [list(p) for p in self.phases],
            "clock": self.clock,
            "local_ops": self.local_ops,
            "idle_time": self.idle_time,
            "sends": self.sends,
            "recvs": self.recvs,
            "words_sent": self.words_sent,
            "words_received": self.words_received,
            "ctrl_ops": self.ctrl_ops,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CompileCharges":
        return cls(
            phases=tuple((str(n), float(s), float(o)) for n, s, o in data["phases"]),
            clock=float(data["clock"]),
            local_ops=float(data["local_ops"]),
            idle_time=float(data["idle_time"]),
            sends=int(data["sends"]),
            recvs=int(data["recvs"]),
            words_sent=int(data["words_sent"]),
            words_received=int(data["words_received"]),
            ctrl_ops=int(data["ctrl_ops"]),
        )


class ChargeRecorder:
    """Snapshot a rank's stats at the start of the compile prefix and diff
    them at the end into a :class:`CompileCharges`.

    The compile prefix is the very first thing a program does, so the
    "start" snapshot is all zeros in practice — but diffing keeps the
    recorder honest if a caller ever composes programs.
    """

    def __init__(self, ctx):
        st = ctx.stats
        self._pt0 = dict(st.phase_times)
        self._po0 = dict(st.phase_ops)
        self._clock0 = st.clock
        self._ops0 = st.local_ops
        self._idle0 = st.idle_time
        self._sends0 = st.sends
        self._recvs0 = st.recvs
        self._ws0 = st.words_sent
        self._wr0 = st.words_received
        self._ctrl0 = st.ctrl_ops

    def finish(self, ctx, phase_names: Sequence[str], prefix: str) -> CompileCharges:
        """Close the recording: ``phase_names`` is the canonical ordered
        list of prefix phases (absolute names); ``prefix`` is stripped so
        the charges replay under any phase prefix."""
        st = ctx.stats
        strip = prefix + "."
        phases = []
        for name in phase_names:
            secs = st.phase_times.get(name, 0.0) - self._pt0.get(name, 0.0)
            ops = st.phase_ops.get(name, 0.0) - self._po0.get(name, 0.0)
            rel = name[len(strip):] if name.startswith(strip) else name
            phases.append((rel, secs, ops))
        return CompileCharges(
            phases=tuple(phases),
            clock=st.clock,
            local_ops=st.local_ops,
            idle_time=st.idle_time,
            sends=st.sends - self._sends0,
            recvs=st.recvs - self._recvs0,
            words_sent=st.words_sent - self._ws0,
            words_received=st.words_received - self._wr0,
            ctrl_ops=st.ctrl_ops - self._ctrl0,
        )


def replay_charges(ctx, charges: CompileCharges, prefix: str) -> None:
    """Re-apply a recorded compile prefix to ``ctx`` without recomputing.

    In the **simulated** domain the phases are walked in order, their
    recorded seconds and op counts re-charged, and the rank's absolute
    clock / op / message counters pinned to the recorded values — so a
    cache-hit run is bit-identical to the compile run (times, phase
    breakdown, traffic totals).  In the **wall** domain only the phase
    labels are touched (each for ~0 real seconds): wall clocks measure
    what actually happened, and what happened is that the compile work
    was skipped.
    """
    simulated = getattr(ctx, "time_domain", "wall") == "simulated"
    st = ctx.stats
    for rel, secs, ops in charges.phases:
        ctx.phase(f"{prefix}.{rel}")
        if simulated:
            if ops:
                st.charge_ops(ops)
            if secs:
                st.advance(secs)
    if simulated:
        # Pin the absolute totals: replay re-sums what the compile run
        # accumulated through many small additions, so force the exact
        # recorded values rather than trusting float associativity.
        st.clock = charges.clock
        st.local_ops = charges.local_ops
        st.idle_time = charges.idle_time
        st.sends += charges.sends
        st.recvs += charges.recvs
        st.words_sent += charges.words_sent
        st.words_received += charges.words_received
        st.ctrl_ops += charges.ctrl_ops


# ----------------------------------------------------- array (de)serialization
def _nd_to_dict(a: np.ndarray | None) -> dict | None:
    if a is None:
        return None
    a = np.ascontiguousarray(a)
    return {
        "dtype": str(a.dtype),
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def _nd_from_dict(d: Mapping[str, Any] | None) -> np.ndarray | None:
    if d is None:
        return None
    raw = base64.b64decode(d["data"])
    return np.frombuffer(raw, dtype=np.dtype(d["dtype"])).reshape(d["shape"]).copy()


def _nbytes(a) -> int:
    return int(a.nbytes) if isinstance(a, np.ndarray) else 0


# ------------------------------------------------------------ per-rank plans
@dataclass
class PackRankPlan:
    """One rank's compiled PACK bookkeeping.

    ``positions`` / ``ranks`` / ``dests`` / ``slice_ids`` are the
    mask-derived vectors of :class:`~repro.core.storage.SelectedElements`
    (everything but the values, which are data); ``size`` is the global
    Size; ``charges`` the recorded compile prefix
    (ranking + sendl + rescan).  ``compile_wall`` is the real wall
    seconds the prefix took to compute — the number a cache hit drives
    to ~0.
    """

    positions: np.ndarray
    ranks: np.ndarray
    dests: np.ndarray
    slice_ids: np.ndarray
    size: int
    charges: CompileCharges
    compile_wall: float = 0.0

    @property
    def nbytes(self) -> int:
        return sum(_nbytes(a) for a in
                   (self.positions, self.ranks, self.dests, self.slice_ids))

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "pack",
            "positions": _nd_to_dict(self.positions),
            "ranks": _nd_to_dict(self.ranks),
            "dests": _nd_to_dict(self.dests),
            "slice_ids": _nd_to_dict(self.slice_ids),
            "size": self.size,
            "charges": self.charges.to_dict(),
            "compile_wall": self.compile_wall,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PackRankPlan":
        return cls(
            positions=_nd_from_dict(d["positions"]),
            ranks=_nd_from_dict(d["ranks"]),
            dests=_nd_from_dict(d["dests"]),
            slice_ids=_nd_from_dict(d["slice_ids"]),
            size=int(d["size"]),
            charges=CompileCharges.from_dict(d["charges"]),
            compile_wall=float(d.get("compile_wall", 0.0)),
        )


@dataclass
class UnpackRankPlan:
    """One rank's compiled UNPACK bookkeeping.

    Beyond the selected-element maps, UNPACK's entire *request round* is
    mask-derived: which owners this rank asks (``request_order`` /
    ``request_counts``) and — crucially — which requests this rank will
    *receive* (``incoming``: per source, an explicit rank list or a
    compressed ``(bases, lengths)`` pair).  A cache hit therefore skips
    not just the ranking but the whole phase-A exchange; only the value
    replies move for real.
    """

    positions: np.ndarray
    elem_order: np.ndarray | None
    request_order: tuple[int, ...]
    request_counts: dict[int, int]
    request_words: int
    incoming: dict[int, Any]
    size: int
    e_i: int
    charges: CompileCharges
    compile_wall: float = 0.0

    @property
    def nbytes(self) -> int:
        total = _nbytes(self.positions) + _nbytes(self.elem_order)
        for req in self.incoming.values():
            if isinstance(req, tuple):
                total += _nbytes(req[0]) + _nbytes(req[1])
            else:
                total += _nbytes(req)
        return total

    def to_dict(self) -> dict[str, Any]:
        incoming = {}
        for src, req in self.incoming.items():
            if isinstance(req, tuple):
                incoming[str(src)] = {
                    "bases": _nd_to_dict(req[0]), "lengths": _nd_to_dict(req[1])
                }
            else:
                incoming[str(src)] = _nd_to_dict(np.asarray(req))
        return {
            "kind": "unpack",
            "positions": _nd_to_dict(self.positions),
            "elem_order": _nd_to_dict(self.elem_order),
            "request_order": list(self.request_order),
            "request_counts": {str(k): v for k, v in self.request_counts.items()},
            "request_words": self.request_words,
            "incoming": incoming,
            "size": self.size,
            "e_i": self.e_i,
            "charges": self.charges.to_dict(),
            "compile_wall": self.compile_wall,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "UnpackRankPlan":
        incoming: dict[int, Any] = {}
        for src, req in d["incoming"].items():
            if isinstance(req, Mapping) and "bases" in req:
                incoming[int(src)] = (
                    _nd_from_dict(req["bases"]), _nd_from_dict(req["lengths"])
                )
            else:
                incoming[int(src)] = _nd_from_dict(req)
        return cls(
            positions=_nd_from_dict(d["positions"]),
            elem_order=_nd_from_dict(d["elem_order"]),
            request_order=tuple(int(x) for x in d["request_order"]),
            request_counts={int(k): int(v) for k, v in d["request_counts"].items()},
            request_words=int(d["request_words"]),
            incoming=incoming,
            size=int(d["size"]),
            e_i=int(d["e_i"]),
            charges=CompileCharges.from_dict(d["charges"]),
            compile_wall=float(d.get("compile_wall", 0.0)),
        )


@dataclass
class RankingRankPlan:
    """One rank's compiled ranking outcome: the whole result is
    mask-derived, so a cache hit is pure replay plus these arrays."""

    ranks_local: np.ndarray
    size: int
    charges: CompileCharges
    compile_wall: float = 0.0

    @property
    def nbytes(self) -> int:
        return _nbytes(self.ranks_local)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "ranking",
            "ranks_local": _nd_to_dict(self.ranks_local),
            "size": self.size,
            "charges": self.charges.to_dict(),
            "compile_wall": self.compile_wall,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RankingRankPlan":
        return cls(
            ranks_local=_nd_from_dict(d["ranks_local"]),
            size=int(d["size"]),
            charges=CompileCharges.from_dict(d["charges"]),
            compile_wall=float(d.get("compile_wall", 0.0)),
        )


@dataclass
class Red1RankPlan:
    """One rank's compiled Red.1 (selected-data redistribution) PACK.

    The pre-pass detect stage is entirely mask-derived: which local flat
    positions are selected per destination (``out``: dest → (source flat
    positions, combined global indices)), and which block-layout slots
    each incoming message scatters into (``incoming``: source → local
    flat indices, aligned with that message's value order).  A cache hit
    replays the detect charges, gathers only the *values* at the stored
    positions, runs the exchange for real (identical traffic, so the
    simulated timeline stays bit-identical), scatters replies through the
    stored index maps, and hands the inner block-layout PACK its own
    compiled :class:`PackRankPlan`.
    """

    out: dict[int, tuple[np.ndarray, np.ndarray]]
    incoming: dict[int, np.ndarray]
    e_sel: int
    e_recv: int
    detect_charges: CompileCharges
    inner: PackRankPlan
    compile_wall: float = 0.0

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def nbytes(self) -> int:
        total = self.inner.nbytes
        for src_flat, g_idx in self.out.values():
            total += _nbytes(src_flat) + _nbytes(g_idx)
        for lf in self.incoming.values():
            total += _nbytes(lf)
        return total

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "pack_red1",
            "out": {
                str(dest): {
                    "src_flat": _nd_to_dict(src_flat),
                    "g_idx": _nd_to_dict(g_idx),
                }
                for dest, (src_flat, g_idx) in self.out.items()
            },
            "incoming": {
                str(src): _nd_to_dict(lf) for src, lf in self.incoming.items()
            },
            "e_sel": self.e_sel,
            "e_recv": self.e_recv,
            "detect_charges": self.detect_charges.to_dict(),
            "inner": self.inner.to_dict(),
            "compile_wall": self.compile_wall,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Red1RankPlan":
        return cls(
            out={
                int(dest): (_nd_from_dict(v["src_flat"]), _nd_from_dict(v["g_idx"]))
                for dest, v in d["out"].items()
            },
            incoming={
                int(src): _nd_from_dict(lf) for src, lf in d["incoming"].items()
            },
            e_sel=int(d["e_sel"]),
            e_recv=int(d["e_recv"]),
            detect_charges=CompileCharges.from_dict(d["detect_charges"]),
            inner=PackRankPlan.from_dict(d["inner"]),
            compile_wall=float(d.get("compile_wall", 0.0)),
        )


@dataclass
class Red2RankPlan:
    """One rank's compiled Red.2 (whole-array redistribution) PACK.

    The pre-pass moves the whole array and mask with the general
    redistribution engine — pure data movement whose charges depend only
    on geometry, so a cache hit re-runs it for real (same traffic, same
    simulated times) and only the *inner* block-layout PACK replays its
    compiled prefix.  That is where the compile cost lives: the ranking
    over the redistributed mask."""

    inner: PackRankPlan
    compile_wall: float = 0.0

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def nbytes(self) -> int:
        return self.inner.nbytes

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "pack_red2",
            "inner": self.inner.to_dict(),
            "compile_wall": self.compile_wall,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Red2RankPlan":
        return cls(
            inner=PackRankPlan.from_dict(d["inner"]),
            compile_wall=float(d.get("compile_wall", 0.0)),
        )


_RANK_PLAN_KINDS = {
    "pack": PackRankPlan,
    "unpack": UnpackRankPlan,
    "ranking": RankingRankPlan,
    "pack_red1": Red1RankPlan,
    "pack_red2": Red2RankPlan,
}


# ------------------------------------------------------------------ the plan
@dataclass
class Plan:
    """A compiled, serializable redistribution plan: one entry per rank.

    Built by the host from the per-rank plan entries a ``capture=True``
    run returns; executed by handing each rank its entry back through the
    backend's ``make_rank_args`` seam (so warm mp gangs receive it like
    any other rank argument and skip the recompute).
    """

    key: PlanKey
    ranks: list  # one {Pack,Unpack,Ranking}RankPlan per rank
    version: int = 1

    @property
    def nprocs(self) -> int:
        return len(self.ranks)

    @property
    def size(self) -> int:
        return int(self.ranks[0].size) if self.ranks else 0

    @property
    def nbytes(self) -> int:
        return sum(r.nbytes for r in self.ranks)

    @property
    def compile_wall(self) -> float:
        """Max over ranks of the real wall seconds the compile prefix took."""
        return max((r.compile_wall for r in self.ranks), default=0.0)

    def to_dict(self) -> dict[str, Any]:
        key = self.key
        return {
            "version": self.version,
            "key": {
                "op": key.op,
                "dims": [list(t) for t in key.dims],
                "nprocs": key.nprocs,
                "scheme": key.scheme,
                "prs": key.prs,
                "m2m_schedule": key.m2m_schedule,
                "early_exit_scan": key.early_exit_scan,
                "charge_self_copy": key.charge_self_copy,
                "result_block": key.result_block,
                "compress_requests": key.compress_requests,
                "n_result": key.n_result,
                "spec": key.spec,
                "time_domain": key.time_domain,
                "fingerprint": key.fingerprint,
            },
            "ranks": [r.to_dict() for r in self.ranks],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Plan":
        k = data["key"]
        key = PlanKey(
            op=k["op"],
            dims=tuple(tuple(int(x) for x in t) for t in k["dims"]),
            nprocs=int(k["nprocs"]),
            scheme=k["scheme"],
            prs=k["prs"],
            m2m_schedule=k["m2m_schedule"],
            early_exit_scan=bool(k["early_exit_scan"]),
            charge_self_copy=bool(k["charge_self_copy"]),
            result_block=k["result_block"],
            compress_requests=bool(k["compress_requests"]),
            n_result=k["n_result"],
            spec=k["spec"],
            time_domain=k["time_domain"],
            fingerprint=k["fingerprint"],
        )
        ranks = [
            _RANK_PLAN_KINDS[r["kind"]].from_dict(r) for r in data["ranks"]
        ]
        return cls(key=key, ranks=ranks, version=int(data.get("version", 1)))

    def summary(self) -> str:
        lines = [
            f"plan {self.key.describe()}",
            f"  ranks={self.nprocs} size={self.size} "
            f"bytes={self.nbytes} compile_wall={self.compile_wall * 1e3:.3f} ms",
        ]
        for r, entry in enumerate(self.ranks):
            extra = ""
            charges = getattr(entry, "charges", None)
            if isinstance(entry, PackRankPlan):
                extra = f"e_i={int(entry.positions.size)}"
            elif isinstance(entry, UnpackRankPlan):
                extra = (f"e_i={entry.e_i} owners={len(entry.request_order)} "
                         f"serves={len(entry.incoming)}")
            elif isinstance(entry, RankingRankPlan):
                extra = f"block={entry.ranks_local.shape}"
            elif isinstance(entry, Red1RankPlan):
                extra = f"e_sel={entry.e_sel} e_recv={entry.e_recv}"
                charges = entry.detect_charges
            elif isinstance(entry, Red2RankPlan):
                extra = f"e_i={int(entry.inner.positions.size)}"
                charges = entry.inner.charges
            secs = sum(s for _, s, _ in charges.phases) if charges else 0.0
            lines.append(
                f"  rank {r}: {extra} "
                f"compile={secs * 1e3:.4f} "
                f"({'sim' if self.key.time_domain == 'simulated' else 'wall'} ms)"
            )
        return "\n".join(lines)
