"""Cyclic-to-block redistribution pre-passes for PACK (Section 6.3).

The ranking overhead is governed by the tile counts ``T_i``, which are
maximal for cyclic distributions.  When the input is distributed cyclically
the paper proposes redistributing to BLOCK first and then packing with the
compact message scheme (which is the best scheme on a block distribution):

**Red.1 — redistribution of selected data**
    Only mask-true elements move; each travels with its *global index*
    (the d per-dimension indices combined into one word to halve index
    traffic).  Receivers rebuild temporary array/mask blocks (mask
    initialized false).  Useful when few elements are selected.

**Red.2 — redistribution of whole arrays**
    Both the input array and the mask are redistributed with the general
    engine of :mod:`repro.hpf.redistribute`, paying its two communication-
    detection phases but avoiding the per-element index traffic and
    receiver-side scattering.  Useful when many elements are selected —
    and roughly density-insensitive, since the volume is ``2L`` per rank
    regardless of the mask.

Both return the same result vector as a direct PACK of the original
distribution (ranks depend only on the *global positions* of the trues,
which redistribution preserves).

Phases: ``pack.red.detect``, ``pack.red.comm``, ``pack.red.build`` for
Red.1; Red.2 reuses :func:`repro.hpf.redistribute.redistribute` under
``pack.red.array`` / ``pack.red.mask``; the subsequent block-distribution
PACK charges its usual ``pack.*`` phases.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import Any, Generator

import numpy as np

from ..hpf.dimlayout import DimLayout
from ..hpf.grid import GridLayout
from ..hpf.redistribute import detection_phase_ops, redistribute
from ..machine.context import Context
from ..machine.m2m import exchange
from .pack import PackLocal, pack_program
from .plan import ChargeRecorder, Red1RankPlan, Red2RankPlan
from .schemes import PackConfig, Scheme

__all__ = [
    "block_layout_of",
    "pack_red1_program",
    "pack_red2_program",
    "unpack_red_program",
]


def block_layout_of(grid: GridLayout) -> GridLayout:
    """The BLOCK layout with the same shape and processor grid."""
    return GridLayout(
        dims=tuple(DimLayout(n=d.n, p=d.p, w=d.n // d.p) for d in grid.dims)
    )


def _cms(config: PackConfig) -> PackConfig:
    """The paper adds each pre-pass to a CMS pack on the block distribution."""
    return replace(config, scheme=Scheme.CMS)


def pack_red1_program(
    ctx: Context,
    local_array: np.ndarray,
    local_mask: np.ndarray | None,
    grid: GridLayout,
    config: PackConfig,
    pad_block: np.ndarray | None = None,
    n_result: int | None = None,
    plan: Red1RankPlan | None = None,
    capture: bool = False,
) -> Generator[Any, Any, PackLocal]:
    """PACK with the *selected data* redistribution pre-pass (Red.1).

    ``plan`` / ``capture`` are the plan/execute hooks
    (:mod:`repro.core.plan`).  The exchange always runs for real — with a
    plan the messages are rebuilt from the stored index maps, so the wire
    traffic (and therefore the simulated timeline) is identical to the
    compile run while the mask scan, destination computation and
    receiver-side index decomposition are skipped.
    """
    if plan is not None and capture:
        raise ValueError(
            "pack_red1_program: plan= and capture= are mutually exclusive"
        )
    local_array = np.asarray(local_array)
    block_grid = block_layout_of(grid)
    local = ctx.spec.local
    d = grid.d
    L = int(np.prod(grid.local_shape))

    if plan is not None:
        # ------------------------------------- detect: replay + re-gather
        from .plan import replay_charges

        replay_charges(ctx, plan.detect_charges, "pack")
        flat_vals = local_array.ravel()
        outgoing = {
            dest: (g_idx, flat_vals[src_flat])
            for dest, (src_flat, g_idx) in plan.out.items()
        }
        e_sel = plan.e_sel
    else:
        local_mask = np.asarray(local_mask, dtype=bool)
        recorder = ChargeRecorder(ctx) if capture else None
        t_compile = perf_counter() if capture else 0.0

        # ------------------------------------------- detect selected elements
        ctx.phase("pack.red.detect")
        flat_mask = local_mask.ravel()
        positions = np.flatnonzero(flat_mask)
        e_sel = int(positions.size)
        values = local_array.ravel()[positions]
        global_flat = grid.global_flat_index(ctx.rank).ravel()[positions]
        # One send-phase schedule construction ([7] — receivers need none,
        # the messages carry indices), a mask scan, and per selected element
        # the combination of d indices into one global index plus the
        # destination computation.
        ctx.work(detection_phase_ops(grid))
        ctx.work(local.seq * L)
        ctx.work(local.rand * (d + 1) * e_sel)

        # Destination rank under the block layout, from the global flat index.
        if e_sel:
            dest = np.zeros(e_sel, dtype=np.int64)
            rank_stride = 1
            rem = global_flat.copy()
            # peel per-dimension indices: dimension 0 varies fastest.
            for i in range(d):
                n_i = block_grid.dims[i].n
                g_i = rem % n_i
                rem //= n_i
                dest += block_grid.dims[i].owners(g_i) * rank_stride
                rank_stride *= block_grid.dims[i].p
        else:
            dest = np.empty(0, dtype=np.int64)

        outgoing = {}
        out_index: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        if e_sel:
            order = np.argsort(dest, kind="stable")
            ds = dest[order]
            boundaries = np.flatnonzero(np.diff(ds)) + 1
            for chunk in np.split(np.arange(e_sel), boundaries):
                rows = order[chunk]
                outgoing[int(ds[chunk[0]])] = (global_flat[rows], values[rows])
                if capture:
                    out_index[int(ds[chunk[0]])] = (
                        positions[rows], global_flat[rows]
                    )
        if capture:
            detect_charges = recorder.finish(ctx, ["pack.red.detect"], "pack")

    words = {dd: 2 * int(v[0].size) for dd, v in outgoing.items()}

    if ctx.metrics is not None:
        # Red.1 economics: volume scales with selected elements (2 words
        # each: combined global index + value), not with L.
        ctx.count("red1.calls")
        ctx.observe("red1.selected", e_sel)
        ctx.observe("red1.words_out", sum(words.values()))

    # ---------------------------------------------------------- move them
    ctx.phase("pack.red.comm")
    received = yield from exchange(
        ctx,
        outgoing,
        words=words,
        schedule=config.m2m_schedule,
        self_copy_charge=config.charge_self_copy,
        reliability=config.reliability,
    )

    # --------------------------------------------- rebuild temporary blocks
    ctx.phase("pack.red.build")
    temp_array = np.zeros(block_grid.local_shape, dtype=local_array.dtype)
    ctx.work(local.seq * L)  # initialize the temporary mask to false
    ta = temp_array.ravel()
    if plan is not None:
        # The stored index maps replace the per-element decomposition; the
        # charges are the same function of L and e_recv as the compile run.
        for source in sorted(received):
            _, vals = received[source]
            lf = plan.incoming.get(source)
            if lf is None or lf.size == 0:
                continue
            ta[lf] = vals
        e_recv = plan.e_recv
        ctx.work(local.rand * (3 * d + 4) * e_recv)
        # The inner PACK replays its own plan, so the temporary mask is
        # never consulted.
        result = yield from pack_program(
            ctx, temp_array, None, block_grid, _cms(config),
            pad_block=pad_block, n_result=n_result,
            plan=plan.inner, capture=False,
        )
        return result

    temp_mask = np.zeros(block_grid.local_shape, dtype=bool)
    e_recv = 0
    tm = temp_mask.ravel()
    incoming_index: dict[int, np.ndarray] = {}
    for source in sorted(received):
        g_idx, vals = received[source]
        g_idx = np.asarray(g_idx, dtype=np.int64)
        if g_idx.size == 0:
            continue
        # Decompose the global flat index into a local flat index under the
        # block layout (dimension 0 fastest).
        local_flat = np.zeros(g_idx.size, dtype=np.int64)
        stride = 1
        rem = g_idx.copy()
        for i in range(d):
            dim = block_grid.dims[i]
            g_i = rem % dim.n
            rem //= dim.n
            local_flat += dim.locals_(g_i) * stride
            stride *= dim.l
        tm[local_flat] = True
        ta[local_flat] = vals
        e_recv += int(g_idx.size)
        if capture:
            incoming_index[source] = local_flat
    # Per received element: decompose the global index into d local
    # indices (integer divisions, ~3 scattered-op equivalents each), then
    # two scattered writes (temp array + temp mask) plus buffer advance.
    ctx.work(local.rand * (3 * d + 4) * e_recv)

    # -------------------------------------- pack on the block distribution
    result = yield from pack_program(
        ctx, temp_array, temp_mask, block_grid, _cms(config),
        pad_block=pad_block, n_result=n_result,
        capture=capture,
    )
    if capture:
        result.rank_plan = Red1RankPlan(
            out=out_index,
            incoming=incoming_index,
            e_sel=e_sel,
            e_recv=e_recv,
            detect_charges=detect_charges,
            inner=result.rank_plan,
            compile_wall=perf_counter() - t_compile,
        )
    return result


def pack_red2_program(
    ctx: Context,
    local_array: np.ndarray,
    local_mask: np.ndarray,
    grid: GridLayout,
    config: PackConfig,
    pad_block: np.ndarray | None = None,
    n_result: int | None = None,
    plan: Red2RankPlan | None = None,
    capture: bool = False,
) -> Generator[Any, Any, PackLocal]:
    """PACK with the *whole arrays* redistribution pre-pass (Red.2).

    ``plan`` / ``capture`` (:mod:`repro.core.plan`): the pre-pass is pure
    data movement and always runs for real — the mask is still
    redistributed on a plan hit so the wire traffic (and the simulated
    timeline) matches the compile run exactly — while the inner
    block-layout PACK replays its compiled prefix, skipping the ranking
    recompute that dominates the compile cost.
    """
    if plan is not None and capture:
        raise ValueError(
            "pack_red2_program: plan= and capture= are mutually exclusive"
        )
    local_array = np.asarray(local_array)
    local_mask = np.asarray(local_mask, dtype=bool)
    block_grid = block_layout_of(grid)
    ctx.count("red2.calls")
    t_compile = perf_counter() if capture else 0.0

    # The two arrays are conformable and aligned, so they share one
    # communication schedule: the two detection phases (send + receive)
    # are charged once, on the array pass.
    new_array = yield from redistribute(
        ctx, grid, block_grid, local_array,
        phase="pack.red.array", schedule=config.m2m_schedule,
    )
    new_mask = yield from redistribute(
        ctx, grid, block_grid, local_mask,
        phase="pack.red.mask", schedule=config.m2m_schedule,
        charge_detection=False,
    )

    result = yield from pack_program(
        ctx, new_array,
        None if plan is not None else new_mask.astype(bool),
        block_grid, _cms(config),
        pad_block=pad_block, n_result=n_result,
        plan=plan.inner if plan is not None else None, capture=capture,
    )
    if capture:
        result.rank_plan = Red2RankPlan(
            inner=result.rank_plan,
            compile_wall=perf_counter() - t_compile,
        )
    return result


def unpack_red_program(
    ctx: Context,
    vector_block: np.ndarray,
    local_mask: np.ndarray,
    local_field: np.ndarray,
    grid: GridLayout,
    n_vector: int,
    config: PackConfig,
):
    """UNPACK with a cyclic-to-block pre-pass — the option the paper rules
    *out* (Section 6.3), implemented so the claim can be measured.

    "Note that this redistribution scheme will not be a feasible option
    for UNPACK.  Since UNPACK is a READ operation, we should return
    result array A with the original distribution ... This may result in
    two steps of redistributions: one for M and F before performing
    UNPACK, and the other for A before returning A."

    The program does exactly that: redistribute the mask and field to
    BLOCK (one shared communication schedule), run UNPACK there, then
    redistribute the result back to the original layout (a second, fresh
    schedule).  Table-II-style comparisons show it losing to the direct
    cyclic UNPACK — the paper's conclusion.
    """
    from .unpack import unpack_program

    local_mask = np.asarray(local_mask, dtype=bool)
    local_field = np.asarray(local_field)
    block_grid = block_layout_of(grid)

    # Pre-pass: mask + field share one schedule (aligned arrays).
    new_mask = yield from redistribute(
        ctx, grid, block_grid, local_mask,
        phase="unpack.red.mask", schedule=config.m2m_schedule,
    )
    new_field = yield from redistribute(
        ctx, grid, block_grid, local_field,
        phase="unpack.red.field", schedule=config.m2m_schedule,
        charge_detection=False,
    )

    result = yield from unpack_program(
        ctx, vector_block, new_mask.astype(bool), new_field, block_grid,
        n_vector, config,
    )

    # Post-pass: the result must come back in the original distribution —
    # a different layout pair, so a fresh schedule (the "second step").
    restored = yield from redistribute(
        ctx, block_grid, grid, result.array_block,
        phase="unpack.red.return", schedule=config.m2m_schedule,
    )
    result.array_block = restored
    return result
