"""Scheme definitions and run configuration.

The paper develops three schemes for PACK (two of which also apply to
UNPACK), trading local memory traffic against message volume:

``Scheme.SSS`` — *simple storage scheme* (Section 6.1):
    one local scan; per selected element, ``d+3`` bookkeeping items are
    stored during the initial ranking scan (local index per dimension,
    tile number, in-slice rank, destination) and read back in the final
    step.  Messages carry explicit ``(global rank, datum)`` pairs.

``Scheme.CSS`` — *compact storage scheme* (Section 6.1):
    nothing is stored per element; a per-slice counter array ``PS_c``
    (copy of ``PS_0``) plus the final base-rank array ``PS_f`` let the
    final step re-derive every rank arithmetically, at the cost of a
    second local scan over the non-empty slices during message
    composition.  Messages are the same pairs as SSS.

``Scheme.CMS`` — *compact message scheme* (Section 6.2):
    CSS storage, plus run-length message encoding: because the ranks of
    the ``n`` selected elements in one slice are consecutive
    (``r0 .. r0+n-1``), each message is a list of segments
    ``(base-rank, count, datum...)`` — ``E + 2*Gs`` words instead of
    ``2*E``.

UNPACK supports SSS and CSS (Section 7 measures exactly those two).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Scheme", "PackConfig"]


class Scheme(enum.Enum):
    """Storage / message-composition scheme (Sections 6.1-6.2)."""

    SSS = "sss"
    CSS = "css"
    CMS = "cms"

    @classmethod
    def parse(cls, value) -> "Scheme":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown scheme {value!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None

    @property
    def stores_records(self) -> bool:
        """Whether per-element bookkeeping is stored during the initial scan."""
        return self is Scheme.SSS

    @property
    def uses_segments(self) -> bool:
        """Whether messages use the compact segment encoding."""
        return self is Scheme.CMS


@dataclass(frozen=True)
class PackConfig:
    """Tunable knobs of one PACK/UNPACK execution.

    Parameters
    ----------
    scheme:
        SSS / CSS / CMS (see :class:`Scheme`).
    prs:
        prefix-reduction-sum algorithm: ``"auto"`` (paper heuristic),
        ``"direct"``, ``"split"`` or ``"ctrl"``.
    m2m_schedule:
        many-to-many schedule: ``"linear"`` (paper) or ``"naive"``.
    early_exit_scan:
        CSS/CMS second-scan policy: stop scanning a slice once all its
        counted elements are found (the paper's method 1, measured
        slightly better) vs always scan the whole slice (method 2).
    charge_self_copy:
        whether a self-addressed message costs a local memcpy (the paper's
        implementation skipped even the copy; default off).
    result_block:
        block size of the result/input vector's distribution, or ``None``
        for the paper's BLOCK distribution (``ceil(Size/P)``).
    compress_requests:
        UNPACK extension (not in the paper, but the natural dual of the
        compact message scheme): send rank *requests* as run-length
        segments ``(base-rank, count)`` instead of explicit rank lists —
        ``2*Gs`` words instead of ``E``.  Exploits the same slice
        property CMS uses for PACK.  CSS only.
    validate:
        host-level API only: check the parallel result against the serial
        numpy oracle and raise on mismatch.
    reliability:
        ``None``/``False`` (default) runs the redistribution rounds on
        the machine's native at-most-once sends; ``True`` or a
        :class:`~repro.faults.reliable.ReliabilityConfig` routes them
        through the reliable transport (checksums, acks, seeded-timeout
        retransmits, dedup), which keeps PACK/UNPACK oracle-correct
        under an injected :class:`~repro.faults.FaultPlan` that drops,
        duplicates or corrupts data messages.  Coerced to a
        ``ReliabilityConfig`` instance (or ``None``) at construction.
    """

    scheme: Scheme = Scheme.CMS
    prs: str = "auto"
    m2m_schedule: str = "linear"
    early_exit_scan: bool = True
    charge_self_copy: bool = False
    result_block: int | None = None
    compress_requests: bool = False
    validate: bool = False
    reliability: object = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheme", Scheme.parse(self.scheme))
        if self.prs not in ("auto", "direct", "split", "ctrl"):
            raise ValueError(f"unknown PRS algorithm {self.prs!r}")
        if self.m2m_schedule not in ("linear", "naive", "direct"):
            raise ValueError(f"unknown m2m schedule {self.m2m_schedule!r}")
        if self.result_block is not None and self.result_block < 1:
            raise ValueError(f"result_block must be >= 1, got {self.result_block}")
        if self.reliability is not None:
            from ..faults.reliable import ReliabilityConfig

            object.__setattr__(
                self, "reliability", ReliabilityConfig.coerce(self.reliability)
            )
