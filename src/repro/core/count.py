"""The COUNT transformational intrinsic.

``COUNT(MASK)`` — the number of true elements — is PACK's little sibling:
it needs only the *reduction* half of the ranking stage (the paper's
``Size`` falls out of intermediate step d-1).  A runtime library gets it
almost for free given the PACK machinery; it is also exactly what an HPF
compiler calls to size PACK's result before allocating it.

The implementation mirrors the ranking stage's structure but carries a
single scalar per processor: local scan (``seq`` per element), then one
scalar all-reduce.  Cost ``O(delta L + tau log P)`` — no per-tile arrays
at all, so unlike ranking it is distribution-insensitive.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..collectives.basics import allreduce
from ..hpf.grid import GridLayout
from ..machine.context import Context
from ..machine.ops import CollectiveOp

__all__ = ["count_program", "count"]


def count_program(
    ctx: Context,
    local_mask: np.ndarray,
    grid: GridLayout,
    phase_prefix: str = "count",
) -> Generator[Any, Any, int]:
    """SPMD COUNT on one rank; returns the global true count everywhere."""
    local_mask = np.asarray(local_mask, dtype=bool)
    if local_mask.shape != grid.local_shape:
        raise ValueError(
            f"rank {ctx.rank}: mask block shape {local_mask.shape} != "
            f"{grid.local_shape}"
        )
    ctx.phase(f"{phase_prefix}.scan")
    local = int(np.count_nonzero(local_mask))
    ctx.work(ctx.spec.local.seq * local_mask.size)

    ctx.phase(f"{phase_prefix}.reduce")
    if ctx.size == 1:
        return local
    if ctx.spec.has_control_network:
        def _combine(payloads: dict) -> tuple[dict, int]:
            total = sum(payloads.values())
            return ({r: total for r in payloads}, 1)

        total = yield CollectiveOp(
            group=tuple(range(ctx.size)), kind="count", payload=local,
            combine=_combine,
        )
    else:
        total = yield from allreduce(ctx, local, words=1)
    return int(total)


def count(
    mask: np.ndarray,
    grid,
    block=None,
    spec=None,
    validate: bool = True,
) -> int:
    """Host-level COUNT: distribute ``mask`` and count its trues in
    parallel on the simulated machine.  See :func:`repro.core.api.pack`
    for the layout parameters."""
    from ..machine.engine import Machine
    from ..machine.spec import CM5

    mask = np.asarray(mask, dtype=bool)
    if isinstance(grid, int):
        grid = (grid,)
    layout = GridLayout.create(mask.shape, grid, block)
    blocks = layout.scatter(mask)
    machine = Machine(layout.nprocs, spec if spec is not None else CM5)
    run = machine.run(
        count_program, rank_args=[(b, layout) for b in blocks]
    )
    results = set(run.results)
    if len(results) != 1:
        raise AssertionError(f"COUNT disagreement across ranks: {results}")
    total = results.pop()
    if validate and total != int(np.count_nonzero(mask)):
        raise AssertionError(
            f"parallel COUNT {total} != oracle {np.count_nonzero(mask)}"
        )
    return total
