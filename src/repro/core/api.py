"""Host-level convenience API.

These functions hide the SPMD machinery: they build the layout, hand the
global arrays to an execution backend (each rank slices out only the
blocks it owns), run the program on every rank, gather the result, and
(optionally) validate it against the serial numpy oracle.  They return
rich result objects carrying per-phase times — simulated seconds under
the default ``backend="sim"``, real wall seconds under ``backend="mp"``
or ``backend="supervised"`` (a persistent, fault-tolerant mp gang; see
:mod:`repro.runtime`).

For writing custom SPMD programs against the library, use the lower-level
generators in :mod:`repro.core.pack` / :mod:`repro.core.unpack` /
:mod:`repro.core.ranking` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..hpf.grid import GridLayout
from ..machine.spec import CM5, MachineSpec
from ..machine.stats import RunResult, same_time_domain
from ..obs.profiler import PhaseProfiler, RunReport, build_run_report
from ..runtime.base import get_backend
from ..serial.reference import mask_ranks, pack_reference, unpack_reference
from .pack import pack_program, result_vector_layout
from .ranking import ranking_program
from .redistribution import pack_red1_program, pack_red2_program
from .schemes import PackConfig, Scheme
from .unpack import input_vector_layout, unpack_program

__all__ = [
    "PackResult",
    "UnpackResult",
    "RankingResult",
    "pack",
    "unpack",
    "ranking",
    "aggregate_time",
]

#: Phase-name fragments counted as communication rather than local work.
_COMM_FRAGMENTS = (".prs.", ".comm", ".red.comm", ".red.array", ".red.mask")


def aggregate_time(
    run: RunResult | Iterable[RunResult], kind: str = "total"
) -> float:
    """Paper-style time aggregates over a run (or runs), in seconds.

    ``kind``:

    * ``"total"`` — max final clock (the measured wall time);
    * ``"local"`` — max over ranks of local-computation phase time: every
      phase except the prefix-reduction-sum and the many-to-many /
      redistribution communication (matches the paper's "local
      computation" measurement, which explicitly excludes PRS);
    * ``"prs"`` — the prefix-reduction-sum phases;
    * ``"m2m"`` — the many-to-many personalized communication phases.

    A sequence of runs is summed — but only after
    :func:`~repro.machine.stats.same_time_domain` confirms they share one
    time domain.  Adding a simulated CM-5 clock to a wall clock measured
    by the multiprocessing backend raises
    :class:`~repro.machine.errors.TimeDomainError` instead of producing a
    meaningless number.
    """
    if not isinstance(run, RunResult):
        runs = tuple(run)
        same_time_domain(runs)
        return sum(aggregate_time(r, kind) for r in runs)
    if kind == "total":
        return run.elapsed

    def is_comm(name: str) -> bool:
        return any(f in name for f in _COMM_FRAGMENTS)

    def is_prs(name: str) -> bool:
        return ".prs." in name

    def is_m2m(name: str) -> bool:
        return name.endswith(".comm") or ".comm." in name or ".red.comm" in name

    best = 0.0
    for s in run.stats:
        total = 0.0
        for name, t in s.phase_times.items():
            if kind == "local" and not is_comm(name):
                total += t
            elif kind == "prs" and is_prs(name):
                total += t
            elif kind == "m2m" and is_m2m(name):
                total += t
        best = max(best, total)
    return best


@dataclass
class _TimedResult:
    """Shared timing and reporting accessors for result objects.

    ``tracer`` / ``metrics`` hold the observers the run was instrumented
    with (``None`` for plain runs); :meth:`report` always works — an
    uninstrumented run simply yields a report without traffic matrix or
    metrics snapshot.
    """

    run: RunResult = field(repr=False)
    tracer: object = field(default=None, repr=False)
    metrics: object = field(default=None, repr=False)
    _op: str = field(default="run", repr=False)
    _spec_name: str = field(default="?", repr=False)

    def report(self) -> RunReport:
        """Structured :class:`~repro.obs.profiler.RunReport` of this run —
        per-phase wall times, traffic matrix (when traced), collective
        counts and the metrics snapshot — without touching simulator
        internals."""
        return build_run_report(
            self.run,
            tracer=self.tracer,
            metrics=self.metrics,
            op=self._op,
            spec=self._spec_name,
        )

    @property
    def time_domain(self) -> str:
        """``"simulated"`` or ``"wall"``, from the backend that ran this."""
        return self.run.time_domain

    @property
    def total_ms(self) -> float:
        return aggregate_time(self.run, "total") * 1e3

    @property
    def local_ms(self) -> float:
        return aggregate_time(self.run, "local") * 1e3

    @property
    def prs_ms(self) -> float:
        return aggregate_time(self.run, "prs") * 1e3

    @property
    def m2m_ms(self) -> float:
        return aggregate_time(self.run, "m2m") * 1e3

    @property
    def times(self) -> dict[str, float]:
        """Per-phase wall times in milliseconds."""
        return {k: v * 1e3 for k, v in self.run.phase_breakdown().items()}


@dataclass
class PackResult(_TimedResult):
    """Outcome of a host-level :func:`pack` call."""

    vector: np.ndarray = field(default=None)
    size: int = 0
    scheme: Scheme = Scheme.CMS
    layout: GridLayout = field(default=None, repr=False)
    total_words: int = 0

    def __str__(self) -> str:
        return (
            f"PackResult(size={self.size}, scheme={self.scheme.value}, "
            f"total={self.total_ms:.3f} ms, local={self.local_ms:.3f} ms)"
        )


@dataclass
class UnpackResult(_TimedResult):
    """Outcome of a host-level :func:`unpack` call."""

    array: np.ndarray = field(default=None)
    size: int = 0
    scheme: Scheme = Scheme.CSS
    layout: GridLayout = field(default=None, repr=False)

    def __str__(self) -> str:
        return (
            f"UnpackResult(size={self.size}, scheme={self.scheme.value}, "
            f"total={self.total_ms:.3f} ms, local={self.local_ms:.3f} ms)"
        )


@dataclass
class RankingResult(_TimedResult):
    """Outcome of a host-level :func:`ranking` call.

    ``ranks`` holds the global rank of every mask-true element and -1
    elsewhere (the shape of the mask).
    """

    ranks: np.ndarray = field(default=None)
    size: int = 0
    layout: GridLayout = field(default=None, repr=False)


def _resolve_observers(profiler, tracer, metrics):
    """One instrumentation story: an explicit profiler wins, else the raw
    observers (either may be None)."""
    if profiler is not None:
        if tracer is not None or metrics is not None:
            raise ValueError("pass either profiler= or tracer=/metrics=, not both")
        return profiler.tracer, profiler.metrics
    return tracer, metrics


def _make_config(
    scheme, prs, m2m_schedule, result_block, early_exit_scan,
    compress_requests=False, reliability=None,
) -> PackConfig:
    return PackConfig(
        scheme=Scheme.parse(scheme),
        prs=prs,
        m2m_schedule=m2m_schedule,
        result_block=result_block,
        early_exit_scan=early_exit_scan,
        compress_requests=compress_requests,
        reliability=reliability,
    )


def pack(
    array: np.ndarray,
    mask: np.ndarray,
    grid: Sequence[int] | int,
    block=None,
    scheme="cms",
    spec: MachineSpec = CM5,
    prs: str = "auto",
    m2m_schedule: str = "linear",
    result_block: int | None = None,
    early_exit_scan: bool = True,
    redistribute: str | None = None,
    vector: np.ndarray | None = None,
    pad: bool = False,
    validate: bool = True,
    profiler: PhaseProfiler | None = None,
    profile=None,
    tracer=None,
    metrics=None,
    faults=None,
    reliability=None,
    step_budget: int | None = None,
    time_budget: float | None = None,
    backend="sim",
) -> PackResult:
    """Parallel PACK of a global numpy array under a simulated machine.

    Parameters
    ----------
    array, mask:
        conformable global numpy arrays; the mask is interpreted as bool.
    vector:
        Fortran 90's optional ``VECTOR`` argument: when given, the result
        has ``vector.size`` elements (>= the number of trues) and the
        positions past the packed data take ``vector``'s values.
    pad:
        lift the paper's divisibility assumption: extents not divisible by
        ``P*W`` are padded with mask-false elements (which PACK never
        selects, so the result is unchanged).  See
        :mod:`repro.core.padding`.
    grid:
        processor grid in numpy axis order (an int for 1-D arrays).
    block:
        per-dimension block sizes (numpy order), an int/str applied to all
        dimensions, or ``None`` for BLOCK.
    scheme:
        ``"sss"`` / ``"css"`` / ``"cms"``.
    redistribute:
        ``None`` (direct pack), ``"selected"`` (Red.1 pre-pass) or
        ``"whole"`` (Red.2 pre-pass) — Section 6.3.
    validate:
        check the result against the serial oracle (always do this in
        tests; turn off in benchmarks measuring simulated time only).
    profile:
        optional :class:`~repro.obs.runtime.RuntimeProfiler`: after the
        call it holds a cross-rank :class:`~repro.obs.runtime.RunProfile`
        — per-rank trace lanes, a P×P communication matrix and a
        phase-attribution table in the backend's own time domain (host
        wall phases like fork/pickle/queue-wait under ``"mp"``).  See
        ``repro profile`` and docs/runtime.md.
    profiler / tracer / metrics:
        optional observability: a :class:`~repro.obs.PhaseProfiler` (its
        report is filled in and the result's :meth:`~_TimedResult.report`
        includes trace-derived data), or a raw
        :class:`~repro.machine.trace.Tracer` /
        :class:`~repro.obs.MetricsRegistry` pair.  All default off; plain
        calls pay nothing.
    faults:
        optional :class:`~repro.faults.FaultPlan` injected into the
        simulated network (seeded, fully reproducible).  Under message
        faults, pass ``reliability`` too or the run will (correctly)
        deadlock / fail validation.
    reliability:
        ``True`` or a :class:`~repro.faults.ReliabilityConfig` to route
        the redistribution rounds through the reliable transport; see
        :class:`~repro.core.schemes.PackConfig`.
    step_budget / time_budget:
        optional progress-watchdog bounds forwarded to
        :class:`~repro.machine.engine.Machine`; a run exceeding them
        raises :class:`~repro.machine.errors.WatchdogError`.
    backend:
        execution backend: ``"sim"`` (default — the deterministic cost
        simulator, times in simulated seconds), ``"mp"`` (one OS
        process per rank on real cores, times in wall seconds),
        ``"supervised"`` (a persistent
        :class:`~repro.runtime.GangSupervisor` gang, forked once and
        reused, with heartbeat monitoring and retry-based recovery from
        rank death), or a :class:`~repro.runtime.Backend` instance.
        Simulator-only features (``faults``, ``reliability``, watchdog
        budgets) raise :class:`~repro.runtime.BackendError` under the
        process backends.

    Returns a :class:`PackResult` whose ``vector`` matches Fortran 90
    ``PACK(array, mask)`` semantics exactly.
    """
    array = np.asarray(array)
    mask = np.asarray(mask, dtype=bool)
    if isinstance(grid, int):
        grid = (grid,)
    original_array, original_mask = array, mask
    if pad:
        from .padding import pad_array, pad_mask, padded_shape

        new_shape, block = padded_shape(array.shape, grid, block)
        array = pad_array(array, new_shape)
        mask = pad_mask(mask, new_shape)
    layout = GridLayout.create(array.shape, grid, block)
    config = _make_config(
        scheme, prs, m2m_schedule, result_block, early_exit_scan,
        reliability=reliability,
    )
    tracer, metrics = _resolve_observers(profiler, tracer, metrics)
    exec_backend = get_backend(backend)
    exec_backend.reject_unsupported(faults=faults, reliability=reliability)

    n_result = None
    pad_layout = None
    if vector is not None:
        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise ValueError(
                f"PACK's VECTOR must be rank 1, got rank {vector.ndim}"
            )
        trues = int(np.count_nonzero(mask))
        if vector.size < trues:
            raise ValueError(
                f"PACK's VECTOR has {vector.size} elements but the mask "
                f"selects {trues}"
            )
        n_result = int(vector.size)
        pad_layout = result_vector_layout(n_result, layout.nprocs, config)

    if redistribute is None:
        program = pack_program
    elif redistribute == "selected":
        program = pack_red1_program
    elif redistribute == "whole":
        program = pack_red2_program
    else:
        raise ValueError(
            f"redistribute must be None, 'selected' or 'whole', got {redistribute!r}"
        )

    # Each rank extracts only the blocks it owns from the shared global
    # arrays (views in-process; shared-memory slices under "mp") — the
    # host never materializes a per-rank copy of anything.
    shared = {"array": array, "mask": mask}
    if vector is not None:
        shared["pad_vector"] = vector

    def _rank_args(r, sh):
        pad_block = (
            pad_layout.local_block(sh["pad_vector"], r)
            if pad_layout is not None
            else None
        )
        return (
            layout.local_block(sh["array"], r, copy=False),
            layout.local_block(sh["mask"], r, copy=False),
            layout, config, pad_block, n_result,
        )

    run = exec_backend.run_spmd(
        program,
        layout.nprocs,
        make_rank_args=_rank_args,
        shared=shared,
        spec=spec,
        tracer=tracer,
        metrics=metrics,
        faults=faults,
        step_budget=step_budget,
        time_budget=time_budget,
        profile=profile,
    )
    size = run.results[0].size
    vec_layout = result_vector_layout(
        n_result if n_result is not None else size, layout.nprocs, config
    )
    vector = vec_layout.gather(
        [run.results[r].vector_block for r in range(layout.nprocs)],
        dtype=array.dtype,
    )
    if validate:
        expected = pack_reference(original_array, original_mask, vector)
        if vector.shape != expected.shape or not np.array_equal(vector, expected):
            raise AssertionError(
                f"parallel PACK mismatch vs serial oracle "
                f"(scheme={config.scheme.value}, layout={layout.describe()})"
            )
    if profiler is not None:
        profiler.finish(run, op="pack", spec=spec.name)
    if profile is not None and profile.profile is not None:
        profile.finish(op="pack", spec=spec.name)
    return PackResult(
        run=run,
        vector=vector,
        size=size,
        scheme=config.scheme,
        layout=layout,
        total_words=run.total_words,
        tracer=tracer,
        metrics=metrics,
        _op="pack",
        _spec_name=spec.name,
    )


def unpack(
    vector: np.ndarray,
    mask: np.ndarray,
    field_array: np.ndarray,
    grid: Sequence[int] | int,
    block=None,
    scheme="css",
    spec: MachineSpec = CM5,
    prs: str = "auto",
    m2m_schedule: str = "linear",
    result_block: int | None = None,
    early_exit_scan: bool = True,
    compress_requests: bool = False,
    pad: bool = False,
    validate: bool = True,
    profiler: PhaseProfiler | None = None,
    profile=None,
    tracer=None,
    metrics=None,
    faults=None,
    reliability=None,
    step_budget: int | None = None,
    time_budget: float | None = None,
    backend="sim",
) -> UnpackResult:
    """Parallel UNPACK: scatter ``vector`` into the trues of ``mask``, with
    ``field_array`` filling the falses.  See :func:`pack` for parameters
    (including ``faults`` / ``reliability`` / the watchdog budgets);
    ``scheme`` must be ``"sss"`` or ``"css"``.  ``field_array`` may be a
    scalar (Fortran 90 allows a scalar FIELD).  ``compress_requests``
    run-length-encodes the rank requests (CSS only; a library extension —
    see :class:`repro.core.schemes.PackConfig`)."""
    vector = np.asarray(vector)
    mask = np.asarray(mask, dtype=bool)
    field_array = np.asarray(field_array)
    if vector.ndim != 1:
        raise ValueError(
            f"UNPACK input vector must be rank 1, got rank {vector.ndim}"
        )
    trues = int(np.count_nonzero(mask))
    if vector.size < trues:
        raise ValueError(
            f"UNPACK vector has {vector.size} elements but the mask selects "
            f"{trues}"
        )
    if field_array.ndim == 0:
        field_array = np.full(mask.shape, field_array[()])
    if isinstance(grid, int):
        grid = (grid,)
    original_shape = mask.shape
    original_mask, original_field = mask, field_array
    if pad:
        from .padding import pad_array, pad_mask, padded_shape

        new_shape, block = padded_shape(mask.shape, grid, block)
        mask = pad_mask(mask, new_shape)
        field_array = pad_array(field_array, new_shape)
    layout = GridLayout.create(mask.shape, grid, block)
    config = _make_config(
        scheme, prs, m2m_schedule, result_block, early_exit_scan,
        compress_requests=compress_requests, reliability=reliability,
    )

    tracer, metrics = _resolve_observers(profiler, tracer, metrics)
    exec_backend = get_backend(backend)
    exec_backend.reject_unsupported(faults=faults, reliability=reliability)
    vec_layout = input_vector_layout(int(vector.size), layout.nprocs, config)
    n_vector = int(vector.size)

    # Each rank slices only its own blocks from the shared global arrays
    # (views in-process, shared-memory slices under "mp").
    def _rank_args(r, sh):
        return (
            vec_layout.local_block(sh["vector"], r, copy=False),
            layout.local_block(sh["mask"], r, copy=False),
            layout.local_block(sh["field"], r, copy=False),
            layout,
            n_vector,
            config,
        )

    run = exec_backend.run_spmd(
        unpack_program,
        layout.nprocs,
        make_rank_args=_rank_args,
        shared={"vector": vector, "mask": mask, "field": field_array},
        spec=spec,
        tracer=tracer,
        metrics=metrics,
        faults=faults,
        step_budget=step_budget,
        time_budget=time_budget,
        profile=profile,
    )
    array = layout.gather([run.results[r].array_block for r in range(layout.nprocs)])
    if pad:
        from .padding import crop

        array = crop(array, original_shape)
    if validate:
        expected = unpack_reference(vector, original_mask, original_field)
        if not np.array_equal(array, expected):
            raise AssertionError(
                f"parallel UNPACK mismatch vs serial oracle "
                f"(scheme={config.scheme.value}, layout={layout.describe()})"
            )
    if profiler is not None:
        profiler.finish(run, op="unpack", spec=spec.name)
    if profile is not None and profile.profile is not None:
        profile.finish(op="unpack", spec=spec.name)
    return UnpackResult(
        run=run,
        array=array,
        size=run.results[0].size,
        scheme=config.scheme,
        layout=layout,
        tracer=tracer,
        metrics=metrics,
        _op="unpack",
        _spec_name=spec.name,
    )


def ranking(
    mask: np.ndarray,
    grid: Sequence[int] | int,
    block=None,
    spec: MachineSpec = CM5,
    prs: str = "auto",
    scheme="css",
    validate: bool = True,
    profiler: PhaseProfiler | None = None,
    profile=None,
    tracer=None,
    metrics=None,
    faults=None,
    step_budget: int | None = None,
    time_budget: float | None = None,
    pad: bool = False,
    backend="sim",
) -> RankingResult:
    """Run only the ranking stage and return the global rank array.

    Ranking communicates via hardware collectives only (no point-to-point
    data), so there is no ``reliability`` knob; ``faults`` can still
    crash ranks or stretch straggler clocks.  ``pad`` lifts the ``P*W | N``
    divisibility assumption exactly as in :func:`pack`: padding cells are
    mask-false, contribute nothing to the prefix sums, and are cropped away
    before the ranks are returned."""
    mask = np.asarray(mask, dtype=bool)
    if isinstance(grid, int):
        grid = (grid,)
    original_mask = mask
    original_shape = mask.shape
    if pad:
        from .padding import pad_mask, padded_shape

        new_shape, block = padded_shape(mask.shape, grid, block)
        mask = pad_mask(mask, new_shape)
    tracer, metrics = _resolve_observers(profiler, tracer, metrics)
    exec_backend = get_backend(backend)
    exec_backend.reject_unsupported(faults=faults)
    layout = GridLayout.create(mask.shape, grid, block)
    config_scheme = Scheme.parse(scheme)

    def program(ctx, block_mask):
        result = yield from ranking_program(
            ctx, block_mask, layout, scheme=config_scheme, prs=prs
        )
        ranks_local = result.element_ranks(layout.local_shape)
        ranks_local = np.where(block_mask, ranks_local, -1)
        return (ranks_local, result.size)

    run = exec_backend.run_spmd(
        program,
        layout.nprocs,
        make_rank_args=lambda r, sh: (layout.local_block(sh["mask"], r, copy=False),),
        shared={"mask": mask},
        spec=spec,
        tracer=tracer,
        metrics=metrics,
        faults=faults,
        step_budget=step_budget,
        time_budget=time_budget,
        profile=profile,
    )
    ranks = layout.gather([run.results[r][0] for r in range(layout.nprocs)])
    size = run.results[0][1]
    if pad:
        from .padding import crop

        ranks = crop(ranks, original_shape)
    if validate:
        expected = mask_ranks(original_mask)
        if not np.array_equal(ranks, expected):
            raise AssertionError("parallel ranking mismatch vs serial oracle")
        if size != int(np.count_nonzero(original_mask)):
            raise AssertionError(
                f"Size {size} != oracle {np.count_nonzero(original_mask)}")
    if profiler is not None:
        profiler.finish(run, op="ranking", spec=spec.name)
    if profile is not None and profile.profile is not None:
        profile.finish(op="ranking", spec=spec.name)
    return RankingResult(
        run=run, ranks=ranks, size=size, layout=layout,
        tracer=tracer, metrics=metrics, _op="ranking", _spec_name=spec.name,
    )
