"""Host-level convenience API.

These functions hide the SPMD machinery: they build the layout, hand the
global arrays to an execution backend (each rank slices out only the
blocks it owns), run the program on every rank, gather the result, and
(optionally) validate it against the serial numpy oracle.  They return
rich result objects carrying per-phase times — simulated seconds under
the default ``backend="sim"``, real wall seconds under ``backend="mp"``
or ``backend="supervised"`` (a persistent, fault-tolerant mp gang; see
:mod:`repro.runtime`).

For writing custom SPMD programs against the library, use the lower-level
generators in :mod:`repro.core.pack` / :mod:`repro.core.unpack` /
:mod:`repro.core.ranking` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from ..hpf.grid import GridLayout
from ..machine.spec import CM5, MachineSpec
from ..machine.stats import RunResult, same_time_domain
from ..obs.profiler import PhaseProfiler, RunReport, build_run_report
from ..runtime.base import get_backend
from ..serial.reference import mask_ranks, pack_reference, unpack_reference
from .pack import pack_program, result_vector_layout
from .plan import (
    ChargeRecorder,
    Plan,
    RankingRankPlan,
    plan_key,
    replay_charges,
)
from .plan_cache import resolve_plan_cache
from .ranking import ranking_phase_names, ranking_program
from .redistribution import pack_red1_program, pack_red2_program
from .schemes import PackConfig, Scheme
from .unpack import input_vector_layout, unpack_program

__all__ = [
    "PackResult",
    "UnpackResult",
    "RankingResult",
    "pack",
    "unpack",
    "ranking",
    "aggregate_time",
]

#: Phase-name fragments counted as communication rather than local work.
_COMM_FRAGMENTS = (".prs.", ".comm", ".red.comm", ".red.array", ".red.mask")


def aggregate_time(
    run: RunResult | Iterable[RunResult], kind: str = "total"
) -> float:
    """Paper-style time aggregates over a run (or runs), in seconds.

    ``kind``:

    * ``"total"`` — max final clock (the measured wall time);
    * ``"local"`` — max over ranks of local-computation phase time: every
      phase except the prefix-reduction-sum and the many-to-many /
      redistribution communication (matches the paper's "local
      computation" measurement, which explicitly excludes PRS);
    * ``"prs"`` — the prefix-reduction-sum phases;
    * ``"m2m"`` — the many-to-many personalized communication phases.

    A sequence of runs is summed — but only after
    :func:`~repro.machine.stats.same_time_domain` confirms they share one
    time domain.  Adding a simulated CM-5 clock to a wall clock measured
    by the multiprocessing backend raises
    :class:`~repro.machine.errors.TimeDomainError` instead of producing a
    meaningless number.
    """
    if not isinstance(run, RunResult):
        runs = tuple(run)
        same_time_domain(runs)
        return sum(aggregate_time(r, kind) for r in runs)
    if kind == "total":
        return run.elapsed

    def is_comm(name: str) -> bool:
        return any(f in name for f in _COMM_FRAGMENTS)

    def is_prs(name: str) -> bool:
        return ".prs." in name

    def is_m2m(name: str) -> bool:
        return name.endswith(".comm") or ".comm." in name or ".red.comm" in name

    best = 0.0
    for s in run.stats:
        total = 0.0
        for name, t in s.phase_times.items():
            if kind == "local" and not is_comm(name):
                total += t
            elif kind == "prs" and is_prs(name):
                total += t
            elif kind == "m2m" and is_m2m(name):
                total += t
        best = max(best, total)
    return best


@dataclass
class _TimedResult:
    """Shared timing and reporting accessors for result objects.

    ``tracer`` / ``metrics`` hold the observers the run was instrumented
    with (``None`` for plain runs); :meth:`report` always works — an
    uninstrumented run simply yields a report without traffic matrix or
    metrics snapshot.
    """

    run: RunResult = field(repr=False)
    tracer: object = field(default=None, repr=False)
    metrics: object = field(default=None, repr=False)
    _op: str = field(default="run", repr=False)
    _spec_name: str = field(default="?", repr=False)
    #: Plan-cache outcome of this call (``{"cache": "hit"|"miss"|"off",
    #: "compile_ms", "fingerprint", "plan_bytes"}``) when a ``plan_cache``
    #: was requested; ``None`` for plain calls.
    plan_info: dict | None = field(default=None, repr=False)

    def report(self) -> RunReport:
        """Structured :class:`~repro.obs.profiler.RunReport` of this run —
        per-phase wall times, traffic matrix (when traced), collective
        counts and the metrics snapshot — without touching simulator
        internals."""
        return build_run_report(
            self.run,
            tracer=self.tracer,
            metrics=self.metrics,
            op=self._op,
            spec=self._spec_name,
            plan=self.plan_info,
        )

    @property
    def time_domain(self) -> str:
        """``"simulated"`` or ``"wall"``, from the backend that ran this."""
        return self.run.time_domain

    @property
    def total_ms(self) -> float:
        return aggregate_time(self.run, "total") * 1e3

    @property
    def local_ms(self) -> float:
        return aggregate_time(self.run, "local") * 1e3

    @property
    def prs_ms(self) -> float:
        return aggregate_time(self.run, "prs") * 1e3

    @property
    def m2m_ms(self) -> float:
        return aggregate_time(self.run, "m2m") * 1e3

    @property
    def times(self) -> dict[str, float]:
        """Per-phase wall times in milliseconds."""
        return {k: v * 1e3 for k, v in self.run.phase_breakdown().items()}


@dataclass
class PackResult(_TimedResult):
    """Outcome of a host-level :func:`pack` call."""

    vector: np.ndarray = field(default=None)
    size: int = 0
    scheme: Scheme = Scheme.CMS
    layout: GridLayout = field(default=None, repr=False)
    total_words: int = 0

    def __str__(self) -> str:
        return (
            f"PackResult(size={self.size}, scheme={self.scheme.value}, "
            f"total={self.total_ms:.3f} ms, local={self.local_ms:.3f} ms)"
        )


@dataclass
class UnpackResult(_TimedResult):
    """Outcome of a host-level :func:`unpack` call."""

    array: np.ndarray = field(default=None)
    size: int = 0
    scheme: Scheme = Scheme.CSS
    layout: GridLayout = field(default=None, repr=False)

    def __str__(self) -> str:
        return (
            f"UnpackResult(size={self.size}, scheme={self.scheme.value}, "
            f"total={self.total_ms:.3f} ms, local={self.local_ms:.3f} ms)"
        )


@dataclass
class RankingResult(_TimedResult):
    """Outcome of a host-level :func:`ranking` call.

    ``ranks`` holds the global rank of every mask-true element and -1
    elsewhere (the shape of the mask).
    """

    ranks: np.ndarray = field(default=None)
    size: int = 0
    layout: GridLayout = field(default=None, repr=False)


def _resolve_observers(profiler, tracer, metrics):
    """One instrumentation story: an explicit profiler wins, else the raw
    observers (either may be None)."""
    if profiler is not None:
        if tracer is not None or metrics is not None:
            raise ValueError("pass either profiler= or tracer=/metrics=, not both")
        return profiler.tracer, profiler.metrics
    return tracer, metrics


def _make_config(
    scheme, prs, m2m_schedule, result_block, early_exit_scan,
    compress_requests=False, reliability=None,
) -> PackConfig:
    return PackConfig(
        scheme=Scheme.parse(scheme),
        prs=prs,
        m2m_schedule=m2m_schedule,
        result_block=result_block,
        early_exit_scan=early_exit_scan,
        compress_requests=compress_requests,
        reliability=reliability,
    )


@dataclass
class _PlanState:
    """Per-call plan-cache bookkeeping shared by pack/unpack/ranking.

    ``status`` is ``None`` when no cache was requested, ``"off"`` when one
    was requested but the call is ineligible (fault injection, reliable
    transport — their charges are not a pure function of the key), else
    ``"hit"`` / ``"miss"``.
    """

    cache: object = None
    key: object = None
    plan: Plan | None = None
    capture: bool = False
    status: str | None = None


def _plan_setup(
    plan_cache, bypass: bool, op: str, layout, config, mask,
    n_result, spec_name: str, time_domain: str,
) -> _PlanState:
    """Resolve the cache and probe it for this call's key."""
    cache = resolve_plan_cache(plan_cache)
    if cache is None:
        return _PlanState()
    if bypass:
        return _PlanState(status="off")
    key = plan_key(
        op, layout, config, mask,
        n_result=n_result, spec=spec_name, time_domain=time_domain,
    )
    plan = cache.get(key)
    return _PlanState(
        cache=cache, key=key, plan=plan,
        capture=plan is None, status="hit" if plan is not None else "miss",
    )


def _plan_finish(state: _PlanState, run, nprocs: int, metrics, rank_plan_of):
    """Store a freshly captured plan and build the call's plan-info dict."""
    if state.status is None:
        return None
    if state.status == "off":
        return {"cache": "off", "compile_ms": None}
    if state.capture:
        plan = Plan(
            key=state.key,
            ranks=[rank_plan_of(run.results[r]) for r in range(nprocs)],
        )
        state.cache.put(state.key, plan)
        compile_ms = plan.compile_wall * 1e3
    else:
        plan = state.plan
        compile_ms = 0.0  # the prefix was replayed, not computed
    info = {
        "cache": state.status,
        "compile_ms": compile_ms,
        "fingerprint": state.key.fingerprint,
        "plan_bytes": plan.nbytes,
    }
    if metrics is not None:
        metrics.inc(f"plan_cache.{state.status}")
        metrics.observe("plan.compile_ms", compile_ms)
    return info


def pack(
    array: np.ndarray,
    mask: np.ndarray,
    grid: Sequence[int] | int,
    block=None,
    scheme="cms",
    spec: MachineSpec = CM5,
    prs: str = "auto",
    m2m_schedule: str = "linear",
    result_block: int | None = None,
    early_exit_scan: bool = True,
    redistribute: str | None = None,
    vector: np.ndarray | None = None,
    pad: bool = False,
    validate: bool = True,
    profiler: PhaseProfiler | None = None,
    profile=None,
    tracer=None,
    metrics=None,
    faults=None,
    reliability=None,
    step_budget: int | None = None,
    time_budget: float | None = None,
    backend="sim",
    plan_cache=None,
) -> PackResult:
    """Parallel PACK of a global numpy array under a simulated machine.

    Parameters
    ----------
    array, mask:
        conformable global numpy arrays; the mask is interpreted as bool.
    vector:
        Fortran 90's optional ``VECTOR`` argument: when given, the result
        has ``vector.size`` elements (>= the number of trues) and the
        positions past the packed data take ``vector``'s values.
    pad:
        lift the paper's divisibility assumption: extents not divisible by
        ``P*W`` are padded with mask-false elements (which PACK never
        selects, so the result is unchanged).  See
        :mod:`repro.core.padding`.
    grid:
        processor grid in numpy axis order (an int for 1-D arrays).
    block:
        per-dimension block sizes (numpy order), an int/str applied to all
        dimensions, or ``None`` for BLOCK.
    scheme:
        ``"sss"`` / ``"css"`` / ``"cms"``.
    redistribute:
        ``None`` (direct pack), ``"selected"`` (Red.1 pre-pass) or
        ``"whole"`` (Red.2 pre-pass) — Section 6.3.
    validate:
        check the result against the serial oracle (always do this in
        tests; turn off in benchmarks measuring simulated time only).
    profile:
        optional :class:`~repro.obs.runtime.RuntimeProfiler`: after the
        call it holds a cross-rank :class:`~repro.obs.runtime.RunProfile`
        — per-rank trace lanes, a P×P communication matrix and a
        phase-attribution table in the backend's own time domain (host
        wall phases like fork/pickle/queue-wait under ``"mp"``).  See
        ``repro profile`` and docs/runtime.md.
    profiler / tracer / metrics:
        optional observability: a :class:`~repro.obs.PhaseProfiler` (its
        report is filled in and the result's :meth:`~_TimedResult.report`
        includes trace-derived data), or a raw
        :class:`~repro.machine.trace.Tracer` /
        :class:`~repro.obs.MetricsRegistry` pair.  All default off; plain
        calls pay nothing.
    faults:
        optional :class:`~repro.faults.FaultPlan` injected into the
        simulated network (seeded, fully reproducible).  Under message
        faults, pass ``reliability`` too or the run will (correctly)
        deadlock / fail validation.
    reliability:
        ``True`` or a :class:`~repro.faults.ReliabilityConfig` to route
        the redistribution rounds through the reliable transport; see
        :class:`~repro.core.schemes.PackConfig`.
    step_budget / time_budget:
        optional progress-watchdog bounds forwarded to
        :class:`~repro.machine.engine.Machine`; a run exceeding them
        raises :class:`~repro.machine.errors.WatchdogError`.
    backend:
        execution backend: ``"sim"`` (default — the deterministic cost
        simulator, times in simulated seconds), ``"mp"`` (one OS
        process per rank on real cores, times in wall seconds),
        ``"supervised"`` (a persistent
        :class:`~repro.runtime.GangSupervisor` gang, forked once and
        reused, with heartbeat monitoring and retry-based recovery from
        rank death), or a :class:`~repro.runtime.Backend` instance.
        Simulator-only features (``faults``, ``reliability``, watchdog
        budgets) raise :class:`~repro.runtime.BackendError` under the
        process backends.
    plan_cache:
        opt-in plan/execute split (:mod:`repro.core.plan`): ``True`` /
        ``"on"`` uses the process-default
        :class:`~repro.core.plan_cache.PlanCache`, or pass an instance.
        The mask-dependent compile prefix (ranking, send-vector
        derivation, rescan) is compiled once per (geometry, scheme, mask
        fingerprint, machine spec, time domain) and replayed on repeat
        calls — results and simulated times stay bit-identical; under the
        wall-clock backends the recompute is genuinely skipped.
        ``redistribute`` runs compile their pre-pass bookkeeping into the
        plan too (keyed as ``pack_red1`` / ``pack_red2``); only ``faults``
        / ``reliability`` calls bypass the cache (reported as
        ``plan_info["cache"] == "off"``).

    Returns a :class:`PackResult` whose ``vector`` matches Fortran 90
    ``PACK(array, mask)`` semantics exactly.
    """
    array = np.asarray(array)
    mask = np.asarray(mask, dtype=bool)
    if isinstance(grid, int):
        grid = (grid,)
    original_array, original_mask = array, mask
    if pad:
        from .padding import pad_array, pad_mask, padded_shape

        new_shape, block = padded_shape(array.shape, grid, block)
        array = pad_array(array, new_shape)
        mask = pad_mask(mask, new_shape)
    layout = GridLayout.create(array.shape, grid, block)
    config = _make_config(
        scheme, prs, m2m_schedule, result_block, early_exit_scan,
        reliability=reliability,
    )
    tracer, metrics = _resolve_observers(profiler, tracer, metrics)
    exec_backend = get_backend(backend)
    exec_backend.reject_unsupported(faults=faults, reliability=reliability)

    n_result = None
    pad_layout = None
    if vector is not None:
        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise ValueError(
                f"PACK's VECTOR must be rank 1, got rank {vector.ndim}"
            )
        trues = int(np.count_nonzero(mask))
        if vector.size < trues:
            raise ValueError(
                f"PACK's VECTOR has {vector.size} elements but the mask "
                f"selects {trues}"
            )
        n_result = int(vector.size)
        pad_layout = result_vector_layout(n_result, layout.nprocs, config)

    if redistribute is None:
        program = pack_program
    elif redistribute == "selected":
        program = pack_red1_program
    elif redistribute == "whole":
        program = pack_red2_program
    else:
        raise ValueError(
            f"redistribute must be None, 'selected' or 'whole', got {redistribute!r}"
        )

    plan_op = {None: "pack", "selected": "pack_red1",
               "whole": "pack_red2"}[redistribute]
    plan_state = _plan_setup(
        plan_cache,
        bypass=(faults is not None or bool(reliability)),
        op=plan_op, layout=layout, config=config, mask=mask,
        n_result=n_result, spec_name=spec.name,
        time_domain=exec_backend.time_domain,
    )
    rank_plans = plan_state.plan.ranks if plan_state.plan is not None else None
    # Plain local, not plan_state.capture: the rank-args closure is
    # shipped to supervised-gang workers, and _PlanState drags the whole
    # PlanCache (and its lock) into the closure cells.
    capture_plan = plan_state.capture

    # Each rank extracts only the blocks it owns from the shared global
    # arrays (views in-process; shared-memory slices under "mp") — the
    # host never materializes a per-rank copy of anything.  On a plan hit
    # the mask is not shipped at all: the plan already encodes it.  The
    # exception is Red.2, whose pre-pass redistributes the mask for real
    # even on a hit (the traffic is part of the measured algorithm).
    ship_mask = rank_plans is None or redistribute == "whole"
    shared = {"array": array}
    if ship_mask:
        shared["mask"] = mask
    if vector is not None:
        shared["pad_vector"] = vector

    def _rank_args(r, sh):
        pad_block = (
            pad_layout.local_block(sh["pad_vector"], r)
            if pad_layout is not None
            else None
        )
        base = (
            layout.local_block(sh["array"], r, copy=False),
            layout.local_block(sh["mask"], r, copy=False)
            if ship_mask else None,
            layout, config, pad_block, n_result,
        )
        # The direct program takes (ranking_result, phase_prefix) before
        # the plan hooks; the redistribution programs go straight to them.
        if rank_plans is not None:
            tail = (rank_plans[r], False)
        elif capture_plan:
            tail = (None, True)
        else:
            return base
        if redistribute is None:
            return base + (None, "pack") + tail
        return base + tail

    run = exec_backend.run_spmd(
        program,
        layout.nprocs,
        make_rank_args=_rank_args,
        shared=shared,
        spec=spec,
        tracer=tracer,
        metrics=metrics,
        faults=faults,
        step_budget=step_budget,
        time_budget=time_budget,
        profile=profile,
    )
    size = run.results[0].size
    vec_layout = result_vector_layout(
        n_result if n_result is not None else size, layout.nprocs, config
    )
    vector = vec_layout.gather(
        [run.results[r].vector_block for r in range(layout.nprocs)],
        dtype=array.dtype,
    )
    if validate:
        expected = pack_reference(original_array, original_mask, vector)
        if vector.shape != expected.shape or not np.array_equal(vector, expected):
            raise AssertionError(
                f"parallel PACK mismatch vs serial oracle "
                f"(scheme={config.scheme.value}, layout={layout.describe()})"
            )
    plan_info = _plan_finish(
        plan_state, run, layout.nprocs, metrics, lambda res: res.rank_plan
    )
    if profiler is not None:
        profiler.finish(run, op="pack", spec=spec.name, plan=plan_info)
    if profile is not None and profile.profile is not None:
        profile.finish(op="pack", spec=spec.name)
    return PackResult(
        run=run,
        vector=vector,
        size=size,
        scheme=config.scheme,
        layout=layout,
        total_words=run.total_words,
        tracer=tracer,
        metrics=metrics,
        _op="pack",
        _spec_name=spec.name,
        plan_info=plan_info,
    )


def unpack(
    vector: np.ndarray,
    mask: np.ndarray,
    field_array: np.ndarray,
    grid: Sequence[int] | int,
    block=None,
    scheme="css",
    spec: MachineSpec = CM5,
    prs: str = "auto",
    m2m_schedule: str = "linear",
    result_block: int | None = None,
    early_exit_scan: bool = True,
    compress_requests: bool = False,
    pad: bool = False,
    validate: bool = True,
    profiler: PhaseProfiler | None = None,
    profile=None,
    tracer=None,
    metrics=None,
    faults=None,
    reliability=None,
    step_budget: int | None = None,
    time_budget: float | None = None,
    backend="sim",
    plan_cache=None,
) -> UnpackResult:
    """Parallel UNPACK: scatter ``vector`` into the trues of ``mask``, with
    ``field_array`` filling the falses.  See :func:`pack` for parameters
    (including ``faults`` / ``reliability`` / the watchdog budgets, and
    ``plan_cache`` — an UNPACK plan additionally records each rank's
    incoming request tables, so a hit skips the whole phase-A request
    exchange); ``scheme`` must be ``"sss"`` or ``"css"``.  ``field_array``
    may be a scalar (Fortran 90 allows a scalar FIELD).
    ``compress_requests`` run-length-encodes the rank requests (CSS only;
    a library extension — see :class:`repro.core.schemes.PackConfig`)."""
    vector = np.asarray(vector)
    mask = np.asarray(mask, dtype=bool)
    field_array = np.asarray(field_array)
    if vector.ndim != 1:
        raise ValueError(
            f"UNPACK input vector must be rank 1, got rank {vector.ndim}"
        )
    trues = int(np.count_nonzero(mask))
    if vector.size < trues:
        raise ValueError(
            f"UNPACK vector has {vector.size} elements but the mask selects "
            f"{trues}"
        )
    if field_array.ndim == 0:
        field_array = np.full(mask.shape, field_array[()])
    if isinstance(grid, int):
        grid = (grid,)
    original_shape = mask.shape
    original_mask, original_field = mask, field_array
    if pad:
        from .padding import pad_array, pad_mask, padded_shape

        new_shape, block = padded_shape(mask.shape, grid, block)
        mask = pad_mask(mask, new_shape)
        field_array = pad_array(field_array, new_shape)
    layout = GridLayout.create(mask.shape, grid, block)
    config = _make_config(
        scheme, prs, m2m_schedule, result_block, early_exit_scan,
        compress_requests=compress_requests, reliability=reliability,
    )

    tracer, metrics = _resolve_observers(profiler, tracer, metrics)
    exec_backend = get_backend(backend)
    exec_backend.reject_unsupported(faults=faults, reliability=reliability)
    vec_layout = input_vector_layout(int(vector.size), layout.nprocs, config)
    n_vector = int(vector.size)

    plan_state = _plan_setup(
        plan_cache,
        bypass=(faults is not None or bool(reliability)),
        op="unpack", layout=layout, config=config, mask=mask,
        n_result=n_vector, spec_name=spec.name,
        time_domain=exec_backend.time_domain,
    )
    rank_plans = plan_state.plan.ranks if plan_state.plan is not None else None
    capture_plan = plan_state.capture  # plain local: closure must pickle

    # Each rank slices only its own blocks from the shared global arrays
    # (views in-process, shared-memory slices under "mp").  On a plan hit
    # the mask stays on the host: the plan already encodes it.
    shared = {"vector": vector, "field": field_array}
    if rank_plans is None:
        shared["mask"] = mask

    def _rank_args(r, sh):
        base = (
            vec_layout.local_block(sh["vector"], r, copy=False),
            layout.local_block(sh["mask"], r, copy=False)
            if rank_plans is None else None,
            layout.local_block(sh["field"], r, copy=False),
            layout,
            n_vector,
            config,
        )
        if rank_plans is not None:
            return base + ("unpack", rank_plans[r], False)
        if capture_plan:
            return base + ("unpack", None, True)
        return base

    run = exec_backend.run_spmd(
        unpack_program,
        layout.nprocs,
        make_rank_args=_rank_args,
        shared=shared,
        spec=spec,
        tracer=tracer,
        metrics=metrics,
        faults=faults,
        step_budget=step_budget,
        time_budget=time_budget,
        profile=profile,
    )
    array = layout.gather([run.results[r].array_block for r in range(layout.nprocs)])
    if pad:
        from .padding import crop

        array = crop(array, original_shape)
    if validate:
        expected = unpack_reference(vector, original_mask, original_field)
        if not np.array_equal(array, expected):
            raise AssertionError(
                f"parallel UNPACK mismatch vs serial oracle "
                f"(scheme={config.scheme.value}, layout={layout.describe()})"
            )
    plan_info = _plan_finish(
        plan_state, run, layout.nprocs, metrics, lambda res: res.rank_plan
    )
    if profiler is not None:
        profiler.finish(run, op="unpack", spec=spec.name, plan=plan_info)
    if profile is not None and profile.profile is not None:
        profile.finish(op="unpack", spec=spec.name)
    return UnpackResult(
        run=run,
        array=array,
        size=run.results[0].size,
        scheme=config.scheme,
        layout=layout,
        tracer=tracer,
        metrics=metrics,
        _op="unpack",
        _spec_name=spec.name,
        plan_info=plan_info,
    )


def _ranking_host_program(
    ctx, block_mask, layout, scheme, prs, plan=None, capture=False
):
    """Per-rank program behind the host-level :func:`ranking`.

    Returns ``(masked element ranks, Size, captured rank plan or None)``.
    The ranking result is *entirely* mask-derived, so a plan execution is
    pure replay: restore the recorded charges, hand back the stored array.
    """
    if plan is not None:
        replay_charges(ctx, plan.charges, "ranking")
        return (plan.ranks_local, plan.size, None)
    recorder = ChargeRecorder(ctx) if capture else None
    t_compile = perf_counter() if capture else 0.0
    result = yield from ranking_program(
        ctx, block_mask, layout, scheme=scheme, prs=prs
    )
    ranks_local = result.masked_element_ranks(block_mask, layout.local_shape)
    rank_plan = None
    if capture:
        rank_plan = RankingRankPlan(
            ranks_local=ranks_local,
            size=result.size,
            charges=recorder.finish(
                ctx, ranking_phase_names(layout.d), "ranking"
            ),
            compile_wall=perf_counter() - t_compile,
        )
    return (ranks_local, result.size, rank_plan)


def ranking(
    mask: np.ndarray,
    grid: Sequence[int] | int,
    block=None,
    spec: MachineSpec = CM5,
    prs: str = "auto",
    scheme="css",
    validate: bool = True,
    profiler: PhaseProfiler | None = None,
    profile=None,
    tracer=None,
    metrics=None,
    faults=None,
    step_budget: int | None = None,
    time_budget: float | None = None,
    pad: bool = False,
    backend="sim",
    plan_cache=None,
) -> RankingResult:
    """Run only the ranking stage and return the global rank array.

    Ranking communicates via hardware collectives only (no point-to-point
    data), so there is no ``reliability`` knob; ``faults`` can still
    crash ranks or stretch straggler clocks.  ``pad`` lifts the ``P*W | N``
    divisibility assumption exactly as in :func:`pack`: padding cells are
    mask-false, contribute nothing to the prefix sums, and are cropped away
    before the ranks are returned."""
    mask = np.asarray(mask, dtype=bool)
    if isinstance(grid, int):
        grid = (grid,)
    original_mask = mask
    original_shape = mask.shape
    if pad:
        from .padding import pad_mask, padded_shape

        new_shape, block = padded_shape(mask.shape, grid, block)
        mask = pad_mask(mask, new_shape)
    tracer, metrics = _resolve_observers(profiler, tracer, metrics)
    exec_backend = get_backend(backend)
    exec_backend.reject_unsupported(faults=faults)
    layout = GridLayout.create(mask.shape, grid, block)
    config_scheme = Scheme.parse(scheme)

    plan_state = _plan_setup(
        plan_cache,
        bypass=(faults is not None),
        op="ranking", layout=layout,
        # Ranking has no PackConfig; key it under the knobs that exist
        # (scheme, prs) with the remaining fields at their defaults.
        config=_make_config(scheme, prs, "linear", None, True),
        mask=mask, n_result=None, spec_name=spec.name,
        time_domain=exec_backend.time_domain,
    )
    rank_plans = plan_state.plan.ranks if plan_state.plan is not None else None
    capture_plan = plan_state.capture  # plain local: closure must pickle
    shared = {} if rank_plans is not None else {"mask": mask}

    def _rank_args(r, sh):
        block_mask = (
            layout.local_block(sh["mask"], r, copy=False)
            if rank_plans is None else None
        )
        base = (block_mask, layout, config_scheme, prs)
        if rank_plans is not None:
            return base + (rank_plans[r], False)
        if capture_plan:
            return base + (None, True)
        return base

    run = exec_backend.run_spmd(
        _ranking_host_program,
        layout.nprocs,
        make_rank_args=_rank_args,
        shared=shared,
        spec=spec,
        tracer=tracer,
        metrics=metrics,
        faults=faults,
        step_budget=step_budget,
        time_budget=time_budget,
        profile=profile,
    )
    ranks = layout.gather([run.results[r][0] for r in range(layout.nprocs)])
    size = run.results[0][1]
    if pad:
        from .padding import crop

        ranks = crop(ranks, original_shape)
    if validate:
        expected = mask_ranks(original_mask)
        if not np.array_equal(ranks, expected):
            raise AssertionError("parallel ranking mismatch vs serial oracle")
        if size != int(np.count_nonzero(original_mask)):
            raise AssertionError(
                f"Size {size} != oracle {np.count_nonzero(original_mask)}")
    plan_info = _plan_finish(
        plan_state, run, layout.nprocs, metrics, lambda res: res[2]
    )
    if profiler is not None:
        profiler.finish(run, op="ranking", spec=spec.name, plan=plan_info)
    if profile is not None and profile.profile is not None:
        profile.finish(op="ranking", spec=spec.name)
    return RankingResult(
        run=run, ranks=ranks, size=size, layout=layout,
        tracer=tracer, metrics=metrics, _op="ranking", _spec_name=spec.name,
        plan_info=plan_info,
    )
