"""Local-computation cost charging — the Section 6.4 model, operationalized.

The paper models per-processor local computation time as

    alpha*L + beta*C + gamma*E_i + eta*E_a + epsilon*Gs_i + zeta*Gr_i

where the coefficients depend on the scheme.  This module turns that model
into explicit charge functions, one per pipeline step, parameterized by the
:class:`~repro.machine.spec.LocalCostModel` unit costs:

=================  ============================================================
quantity           meaning (paper Section 6.4 notation)
=================  ============================================================
``L``              local array size
``C``              number of local slices, ``(prod_{i>=1} L_i) * T_0``
``E_i``            selected (mask-true) elements on this processor
``E_a``            elements landing on this processor after redistribution
``Gs_i``           message segments composed (CMS)
``Gr_i``           message segments decomposed (CMS)
``scan2``          elements touched by the compact schemes' second scan
                   (early-exit: up to the last selected element per
                   non-empty slice; full: ``W_0`` per non-empty slice)
=================  ============================================================

The functions are deliberately fine-grained (one per step) so per-phase
simulated times decompose the same way the paper's measurements do, and so
ablations can re-charge individual steps.

Faithfulness note: the *numpy* computation executed by the library is
vectorized and does not perform these scalar operations one by one; the
charges model what the paper's C implementation on a CM-5 SPARC node did.
Workload quantities (``E_i``, ``Gs_i``, ``scan2``...) are always the real
measured values from the actual data, never estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.spec import LocalCostModel
from .schemes import Scheme

__all__ = ["StepCosts"]


@dataclass(frozen=True)
class StepCosts:
    """Charge calculator bound to one machine's unit costs and a scheme."""

    local: LocalCostModel
    scheme: Scheme
    d: int  # input array rank (SSS bookkeeping stores d+3 items/element)

    # ------------------------------------------------------- ranking stage
    def initial_scan(self, L: int, E_i: int) -> float:
        """Initial ranking step: streaming scan of the local mask.

        All schemes pay ``seq`` per element.  SSS additionally writes its
        ``d+3`` bookkeeping items per selected element (Section 6.4.1:
        "maintaining information for local packed elements will take time
        Theta(4 E_i)" for the 1-D case, growing with rank).
        """
        cost = self.local.seq * L
        if self.scheme.stores_records:
            cost += self.local.rand * (self.d + 3) * E_i
        return cost

    def counter_copy(self, C: int) -> float:
        """CSS/CMS: copy ``PS_0`` into the counter array ``PS_c``."""
        if self.scheme.stores_records:
            return 0.0
        return self.local.seq * C

    def intermediate_local(self, elements: int) -> float:
        """One intermediate-step substep touching ``elements`` vector slots
        (the segmented prefix sums and PS/RS updates of Figure 2)."""
        return self.local.vec * elements

    def final_collapse(self, elements: int) -> float:
        """Final-step base-rank array summations (``PS_i += PS_{i+1}``)."""
        return self.local.vec * elements

    def final_rank_elements(self, C: int, E_i: int, Gs_i: int) -> float:
        """Final step, per-scheme part.

        SSS re-reads the stored records and computes rank + destination
        per element.  CSS/CMS walk the ``C`` slice counters comparing
        ``PS_c`` with ``PS_f`` and emit the ``sendl`` vector — bounded by
        ``C + E_i`` in the paper; the per-slice loop overhead dominates.
        """
        if self.scheme.stores_records:
            return self.local.rand * 2 * E_i
        return self.local.slice_overhead * C + self.local.rand * Gs_i

    # ------------------------------------------------- redistribution stage
    def second_scan(self, C: int, scan2: int) -> float:
        """CSS/CMS message-composition rescan of non-empty slices.

        ``scan2`` is the number of elements actually touched (method 1
        stops at the last selected element of each slice; method 2 always
        touches ``W_0``); the ``slice_overhead`` covers checking ``PS_c``
        for every slice.
        """
        if self.scheme.stores_records:
            return 0.0
        return self.local.slice_overhead * C + self.local.seq * scan2

    def compose(self, E_i: int, Gs_i: int) -> float:
        """Build the outgoing message buffers.

        SSS/CSS write a ``(rank, datum)`` pair per element (``2 E_i``
        scattered writes); CMS writes the datum stream plus two header
        words per segment.
        """
        if self.scheme.uses_segments:
            return self.local.seq * E_i + self.local.seg * Gs_i
        return self.local.rand * 2 * E_i

    def decompose(self, E_a: int, Gr_i: int) -> float:
        """Unpack received buffers into the result vector's local block."""
        if self.scheme.uses_segments:
            return self.local.seq * E_a + self.local.seg * Gr_i
        return self.local.rand * 2 * E_a

    # ------------------------------------------------------- UNPACK extras
    def unpack_requests(self, E_i: int, Gs_i: int) -> float:
        """Compose the rank-request messages (UNPACK phase A)."""
        # Requests are rank lists in both schemes; SSS reads them from the
        # stored records, CSS derives them arithmetically per slice.
        if self.scheme.stores_records:
            return self.local.rand * E_i
        return self.local.seq * E_i + self.local.rand * Gs_i

    def unpack_serve(self, requested: int) -> float:
        """Owner side: gather requested vector elements (scattered reads)."""
        return self.local.rand * requested

    def unpack_place(self, E_i: int) -> float:
        """Scatter received values into the masked positions of A."""
        return self.local.rand * E_i

    def field_merge(self, L: int) -> float:
        """UNPACK: copy field-array values where the mask is false."""
        return self.local.seq * L

    # -------------------------------------------------- message word counts
    def message_words(self, count: int, segments: int) -> int:
        """Words on the wire for ``count`` elements in ``segments`` segments.

        Pair encoding (SSS/CSS): ``2 * count``.  Segment encoding (CMS):
        ``count + 2 * segments`` (base-rank and length per segment).
        """
        if self.scheme.uses_segments:
            return count + 2 * segments
        return 2 * count
