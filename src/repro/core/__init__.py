"""The paper's primary contribution: parallel PACK/UNPACK.

Layering:

* :mod:`repro.core.ranking` — the Section 5 parallel ranking algorithm
  (local scan → per-dimension prefix-reduction-sum steps → final base-rank
  collapse);
* :mod:`repro.core.schemes` — the SSS / CSS / CMS scheme definitions and
  the run configuration;
* :mod:`repro.core.costs` — the Section 6.4 local-computation cost model
  used to charge simulated time;
* :mod:`repro.core.storage` — per-scheme bookkeeping of the selected
  elements (what the "storage scheme" in the paper's sense stores);
* :mod:`repro.core.messages` — pair vs segment message composition and
  decomposition;
* :mod:`repro.core.pack` / :mod:`repro.core.unpack` — the SPMD programs;
* :mod:`repro.core.multi` — gang PACK (k arrays, one mask, one ranking);
* :mod:`repro.core.count` — the COUNT intrinsic;
* :mod:`repro.core.redistribution` — the Section 6.3 cyclic-to-block
  pre-passes (Red.1 / Red.2) and the UNPACK variant the paper rules out;
* :mod:`repro.core.padding` — arbitrary shapes via mask-false padding;
* :mod:`repro.core.plan` / :mod:`repro.core.plan_cache` — the
  plan/execute split: compile the mask-dependent bookkeeping into a
  serializable :class:`~repro.core.plan.Plan`, cache it under a
  geometry + mask-fingerprint key, replay it on repeat calls;
* :mod:`repro.core.api` — host-level convenience API (build machine,
  scatter, run, gather, validate).
"""

from .api import PackResult, RankingResult, UnpackResult, pack, ranking, unpack
from .count import count, count_program
from .multi import pack_many, pack_many_program
from .plan import Plan, PlanKey, mask_fingerprint, plan_key
from .plan_cache import (
    PlanCache,
    PlanCacheStats,
    default_plan_cache,
    reset_default_plan_cache,
    resolve_plan_cache,
)
from .ranking import LocalRanking, ranking_program
from .redistribution import pack_red1_program, pack_red2_program
from .schemes import PackConfig, Scheme

__all__ = [
    "LocalRanking",
    "PackConfig",
    "PackResult",
    "Plan",
    "PlanCache",
    "PlanCacheStats",
    "PlanKey",
    "RankingResult",
    "Scheme",
    "UnpackResult",
    "count",
    "count_program",
    "default_plan_cache",
    "mask_fingerprint",
    "pack",
    "pack_many",
    "pack_many_program",
    "pack_red1_program",
    "pack_red2_program",
    "plan_key",
    "ranking",
    "ranking_program",
    "reset_default_plan_cache",
    "resolve_plan_cache",
    "unpack",
]
