"""Message composition and decomposition for the redistribution stage.

PACK's redistribution is a WRITE: the datum must travel with its global
address (rank) in the result vector.  Two encodings exist:

* **pair encoding** (SSS and CSS, Section 6.2): the message is the list of
  ``(global rank, datum)`` pairs — ``2 * E`` words.
* **segment encoding** (CMS): the selected elements of one slice have
  consecutive ranks, so a maximal same-slice same-destination run ships as
  ``(base-rank, count, datum, ..., datum)`` — ``E + 2 * Gs`` words total.

Messages are composed per destination (coalesced — one message per
destination per exchange, the paper's "all messages with the same
destinations may be coalesced").  Decomposition is the mirror image on the
receiver, mapping ranks to local indices of the result vector's block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..hpf.vector import VectorLayout
from .storage import SelectedElements

__all__ = [
    "PairMessage",
    "SegmentMessage",
    "compose_pair_messages",
    "compose_segment_messages",
    "decompose_pair_message",
    "decompose_segment_message",
]


@dataclass(frozen=True)
class PairMessage:
    """Pair-encoded message: parallel (ranks, values) arrays."""

    ranks: np.ndarray
    values: np.ndarray

    @property
    def count(self) -> int:
        return int(self.ranks.size)

    @property
    def words(self) -> int:
        return 2 * self.count


@dataclass(frozen=True)
class SegmentMessage:
    """Segment-encoded message: (base ranks, per-segment counts, value stream)."""

    bases: np.ndarray
    counts: np.ndarray
    values: np.ndarray

    @property
    def count(self) -> int:
        return int(self.values.size)

    @property
    def segments(self) -> int:
        return int(self.bases.size)

    @property
    def words(self) -> int:
        return self.count + 2 * self.segments


def _group_slices(keys: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """Split ``arange(len(keys))`` into runs of equal key.

    ``keys`` must be *grouped* (equal values contiguous), which holds for
    destination vectors derived from ascending ranks under a block vector
    layout; for non-block layouts the callers sort first.
    """
    if keys.size == 0:
        return []
    boundaries = np.flatnonzero(np.diff(keys)) + 1
    chunks = np.split(np.arange(keys.size), boundaries)
    return [(int(keys[c[0]]), c) for c in chunks]


def _ensure_grouped(sel_order: np.ndarray, dests: np.ndarray) -> np.ndarray:
    """Stable-sort element order by destination if not already grouped."""
    if dests.size <= 1:
        return sel_order
    # Grouped iff every destination change is to a never-seen value; for a
    # monotone destination vector that is automatic.  Cheap test: monotone.
    if np.all(np.diff(dests) >= 0):
        return sel_order
    order = np.argsort(dests, kind="stable")
    return sel_order[order]


def compose_pair_messages(sel: SelectedElements) -> dict[int, PairMessage]:
    """One pair-encoded message per destination."""
    idx = _ensure_grouped(np.arange(sel.count), sel.dests)
    dests = sel.dests[idx]
    out: dict[int, PairMessage] = {}
    for dest, rows in _group_slices(dests):
        rows = idx[rows]
        out[dest] = PairMessage(ranks=sel.ranks[rows], values=sel.values[rows])
    return out


def compose_segment_messages(sel: SelectedElements) -> dict[int, SegmentMessage]:
    """One segment-encoded message per destination.

    Segments are maximal same-slice same-destination runs (consecutive
    ranks within, by the slice property).
    """
    n = sel.count
    if n == 0:
        return {}
    brk = sel.segment_breaks()
    seg_starts = np.flatnonzero(brk)
    seg_ends = np.append(seg_starts[1:], n)
    seg_dest = sel.dests[seg_starts]
    seg_base = sel.ranks[seg_starts]
    seg_count = seg_ends - seg_starts

    out: dict[int, SegmentMessage] = {}
    # Group segments by destination (stable, preserving rank order).
    order = (
        np.arange(seg_dest.size)
        if np.all(np.diff(seg_dest) >= 0)
        else np.argsort(seg_dest, kind="stable")
    )
    sd = seg_dest[order]
    for dest, seg_rows in _group_slices(sd):
        rows = order[seg_rows]
        values = np.concatenate(
            [sel.values[seg_starts[s] : seg_ends[s]] for s in rows]
        )
        out[dest] = SegmentMessage(
            bases=seg_base[rows], counts=seg_count[rows], values=values
        )
    return out


def decompose_pair_message(
    msg: PairMessage, vec: VectorLayout
) -> tuple[np.ndarray, np.ndarray]:
    """Receiver side: (local positions in the vector block, values)."""
    if msg.count == 0:
        return np.empty(0, dtype=np.int64), msg.values
    return vec.locals_(msg.ranks), msg.values


def decompose_segment_message(
    msg: SegmentMessage, vec: VectorLayout
) -> tuple[np.ndarray, np.ndarray]:
    """Receiver side: expand segments into (local positions, values)."""
    if msg.count == 0:
        return np.empty(0, dtype=np.int64), msg.values
    ranks = np.concatenate(
        [base + np.arange(cnt, dtype=np.int64) for base, cnt in zip(msg.bases, msg.counts)]
    )
    return vec.locals_(ranks), msg.values


def message_words(msg: Any) -> int:
    """Wire size of either message kind."""
    return int(msg.words)
