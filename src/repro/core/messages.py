"""Message composition and decomposition for the redistribution stage.

PACK's redistribution is a WRITE: the datum must travel with its global
address (rank) in the result vector.  Two encodings exist:

* **pair encoding** (SSS and CSS, Section 6.2): the message is the list of
  ``(global rank, datum)`` pairs — ``2 * E`` words.
* **segment encoding** (CMS): the selected elements of one slice have
  consecutive ranks, so a maximal same-slice same-destination run ships as
  ``(base-rank, count, datum, ..., datum)`` — ``E + 2 * Gs`` words total.

Messages are composed per destination (coalesced — one message per
destination per exchange, the paper's "all messages with the same
destinations may be coalesced").  Decomposition is the mirror image on the
receiver, mapping ranks to local indices of the result vector's block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..hpf.vector import VectorLayout
from .storage import SelectedElements

__all__ = [
    "PairMessage",
    "SegmentMessage",
    "compose_pair_messages",
    "compose_segment_messages",
    "decompose_pair_message",
    "decompose_segment_message",
    "expand_segments",
    "gather_segments",
    "place_pair_message",
    "place_segment_message",
]


@dataclass(frozen=True)
class PairMessage:
    """Pair-encoded message: parallel (ranks, values) arrays."""

    ranks: np.ndarray
    values: np.ndarray

    @property
    def count(self) -> int:
        return int(self.ranks.size)

    @property
    def words(self) -> int:
        return 2 * self.count


@dataclass(frozen=True)
class SegmentMessage:
    """Segment-encoded message: (base ranks, per-segment counts, value stream)."""

    bases: np.ndarray
    counts: np.ndarray
    values: np.ndarray

    @property
    def count(self) -> int:
        return int(self.values.size)

    @property
    def segments(self) -> int:
        return int(self.bases.size)

    @property
    def words(self) -> int:
        return self.count + 2 * self.segments


def _is_monotone(keys: np.ndarray) -> bool:
    return bool(np.all(keys[1:] >= keys[:-1]))


def _run_bounds(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run boundaries of a *grouped* key vector.

    Returns ``(run_keys, bounds)`` where run ``j`` spans
    ``[bounds[j], bounds[j+1])`` and has key ``run_keys[j]``.
    """
    boundaries = np.flatnonzero(keys[1:] != keys[:-1]) + 1
    bounds = np.concatenate(([0], boundaries, [keys.size]))
    return keys[bounds[:-1]], bounds


def expand_segments(bases: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Expand ``(base, count)`` runs into the full index stream, vectorized.

    ``[b0, b0+1, .., b0+c0-1, b1, ..]`` via the repeat/cumsum-offset trick:
    repeat each base shifted by the elements emitted before its run, then
    add one global ``arange``.  Replaces the per-segment Python loop of
    ``base + arange(count)`` concatenations.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    total = int(cum[-1])
    shifted = np.asarray(bases, dtype=np.int64) - (cum - counts)
    return np.repeat(shifted, counts) + np.arange(total, dtype=np.int64)


def compose_pair_messages(sel: SelectedElements) -> dict[int, PairMessage]:
    """One pair-encoded message per destination.

    Destinations derived from ascending ranks under a block result layout
    are already grouped; that monotone fast path slices the rank/value
    vectors directly (views, no permutation, no copies).  Non-monotone
    destination vectors (block-cyclic result layouts) pay one stable sort.
    """
    if sel.count == 0:
        return {}
    dests = sel.dests
    out: dict[int, PairMessage] = {}
    if _is_monotone(dests):
        run_keys, bounds = _run_bounds(dests)
        for j, dest in enumerate(run_keys):
            a, b = bounds[j], bounds[j + 1]
            out[int(dest)] = PairMessage(
                ranks=sel.ranks[a:b], values=sel.values[a:b]
            )
        return out
    order = np.argsort(dests, kind="stable")
    ranks = sel.ranks[order]
    values = sel.values[order]
    run_keys, bounds = _run_bounds(dests[order])
    for j, dest in enumerate(run_keys):
        a, b = bounds[j], bounds[j + 1]
        out[int(dest)] = PairMessage(ranks=ranks[a:b], values=values[a:b])
    return out


def compose_segment_messages(sel: SelectedElements) -> dict[int, SegmentMessage]:
    """One segment-encoded message per destination.

    Segments are maximal same-slice same-destination runs (consecutive
    ranks within, by the slice property).  Segment geometry and the value
    stream are computed with pure array ops; the only Python loop left is
    one iteration per destination (one message each).  When segment
    destinations are monotone, each destination's segments cover one
    contiguous element span, so its value stream is a plain slice.
    """
    n = sel.count
    if n == 0:
        return {}
    brk = sel.segment_breaks()
    seg_starts = np.flatnonzero(brk)
    seg_ends = np.append(seg_starts[1:], n)
    seg_dest = sel.dests[seg_starts]
    seg_base = sel.ranks[seg_starts]
    seg_count = seg_ends - seg_starts

    out: dict[int, SegmentMessage] = {}
    if _is_monotone(seg_dest):
        run_keys, bounds = _run_bounds(seg_dest)
        for j, dest in enumerate(run_keys):
            a, b = bounds[j], bounds[j + 1]
            out[int(dest)] = SegmentMessage(
                bases=seg_base[a:b],
                counts=seg_count[a:b],
                # Segments are consecutive element ranges, so this
                # destination's values are one contiguous slice.
                values=sel.values[seg_starts[a] : seg_ends[b - 1]],
            )
        return out
    # Non-monotone: order segments by destination (stable, preserving rank
    # order), expand the ordered segment spans into one element gather
    # index, then slice the gathered stream per destination.
    order = np.argsort(seg_dest, kind="stable")
    lengths = seg_count[order]
    elem_idx = expand_segments(seg_starts[order], lengths)
    values_all = sel.values[elem_idx]
    elem_bounds = np.concatenate(([0], np.cumsum(lengths)))
    run_keys, bounds = _run_bounds(seg_dest[order])
    bases = seg_base[order]
    counts = seg_count[order]
    for j, dest in enumerate(run_keys):
        a, b = bounds[j], bounds[j + 1]
        out[int(dest)] = SegmentMessage(
            bases=bases[a:b],
            counts=counts[a:b],
            values=values_all[elem_bounds[a] : elem_bounds[b]],
        )
    return out


def decompose_pair_message(
    msg: PairMessage, vec: VectorLayout
) -> tuple[np.ndarray, np.ndarray]:
    """Receiver side: (local positions in the vector block, values)."""
    if msg.count == 0:
        return np.empty(0, dtype=np.int64), msg.values
    return vec.locals_(msg.ranks), msg.values


def decompose_segment_message(
    msg: SegmentMessage, vec: VectorLayout
) -> tuple[np.ndarray, np.ndarray]:
    """Receiver side: expand segments into (local positions, values).

    A segment's consecutive ranks share one owner, and consecutive global
    indices only change owner at block boundaries, so every segment lives
    inside one block and its local indices are consecutive too.  The local
    map therefore runs over the segment *bases* only (Gs entries), not the
    full value stream.
    """
    if msg.count == 0:
        return np.empty(0, dtype=np.int64), msg.values
    return expand_segments(vec.locals_(msg.bases), msg.counts), msg.values


# Below this ratio of values to segments, a Python loop of slice copies
# beats the vectorized expand + fancy-index path.
_SLICE_RATIO = 64


def place_segment_message(
    block: np.ndarray, msg: SegmentMessage, vec: VectorLayout
) -> int:
    """Write a segment message's values into the receiver's block in place.

    Equivalent to ``pos, vals = decompose_segment_message(...); block[pos]
    = vals`` — but each segment's local indices are one consecutive run
    (see :func:`decompose_segment_message`), so a message carrying few
    long segments is a few slice copies instead of an expanded scatter.
    Returns the element count placed.
    """
    n = msg.count
    if n == 0:
        return 0
    starts = vec.locals_(msg.bases)
    if msg.segments * _SLICE_RATIO <= n:
        values = msg.values
        off = 0
        counts = msg.counts.tolist()
        for j, s in enumerate(starts.tolist()):
            c = counts[j]
            block[s : s + c] = values[off : off + c]
            off += c
    else:
        block[expand_segments(starts, msg.counts)] = msg.values
    return n


def place_pair_message(
    block: np.ndarray, msg: PairMessage, vec: VectorLayout
) -> int:
    """Write a pair message's values into the receiver's block in place.

    When the message's ranks are one consecutive run (always the case for
    a block result layout and a 1-D block source), the whole write is a
    single slice copy; otherwise fall back to the general scatter.
    Returns the element count placed.
    """
    n = msg.count
    if n == 0:
        return 0
    ranks = msg.ranks
    g0 = int(ranks[0])
    if int(ranks[-1]) - g0 == n - 1:
        # Consecutive ranks addressed to one owner live in one block, so
        # the local indices are consecutive as well.
        l0 = (g0 // vec.s) * vec.w + g0 % vec.w
        block[l0 : l0 + n] = msg.values
    else:
        block[vec.locals_(ranks)] = msg.values
    return n


def gather_segments(
    vector_block: np.ndarray,
    bases: np.ndarray,
    lengths: np.ndarray,
    vec: VectorLayout,
) -> np.ndarray:
    """Owner side of a segmented READ: values of ``(base, count)`` rank
    runs out of the local vector block, concatenated in request order.

    The mirror of :func:`place_segment_message` — per-run local indices
    are consecutive, so few long runs become slice copies.
    """
    bases = np.asarray(bases, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size == 0:
        return vector_block[:0]
    starts = vec.locals_(bases)
    total = int(lengths.sum())
    if lengths.size * _SLICE_RATIO <= total:
        out = np.empty(total, dtype=vector_block.dtype)
        off = 0
        lens = lengths.tolist()
        for j, s in enumerate(starts.tolist()):
            c = lens[j]
            out[off : off + c] = vector_block[s : s + c]
            off += c
        return out
    return vector_block[expand_segments(starts, lengths)]


def message_words(msg: Any) -> int:
    """Wire size of either message kind."""
    return int(msg.words)
