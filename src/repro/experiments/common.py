"""Shared machinery for the experiment drivers."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.api import PackResult, UnpackResult, pack, unpack
from ..machine.spec import CM5, MachineSpec
from ..workloads.masks import make_mask

__all__ = [
    "SPEC",
    "mask_for",
    "array_for",
    "run_pack",
    "run_unpack",
    "mask_label",
    "scale_shape",
]

#: All experiments run on the CM-5 profile unless they say otherwise.
SPEC = CM5


@lru_cache(maxsize=64)
def _cached_mask(shape: tuple, kind, seed: int) -> np.ndarray:
    m = make_mask(shape, kind, seed=seed)
    m.setflags(write=False)
    return m


@lru_cache(maxsize=32)
def _cached_array(shape: tuple) -> np.ndarray:
    rng = np.random.default_rng(12345)
    a = rng.random(shape)
    a.setflags(write=False)
    return a


def mask_for(shape, kind, seed: int = 0) -> np.ndarray:
    """Deterministic cached mask for an experiment point."""
    return _cached_mask(tuple(shape), kind, seed)


def array_for(shape) -> np.ndarray:
    """Deterministic cached input array (values are irrelevant to timing)."""
    return _cached_array(tuple(shape))


def mask_label(kind) -> str:
    if isinstance(kind, float):
        return f"{int(round(kind * 100))}%"
    return str(kind).upper()


def scale_shape(shape, fast: bool) -> tuple[int, ...]:
    """Shrink the paper's array sizes 16x for fast runs (1-D: /16 on the
    extent; 2-D: /4 per edge), keeping every divisibility property."""
    if not fast:
        return tuple(shape)
    if len(shape) == 1:
        return (max(shape[0] // 16, 256),)
    factor = int(round(16 ** (1 / len(shape))))
    return tuple(max(n // factor, 32) for n in shape)


def run_pack(
    shape,
    grid,
    block,
    mask_kind,
    scheme,
    spec: MachineSpec = SPEC,
    redistribute: str | None = None,
    validate: bool = False,
    **kw,
) -> PackResult:
    a = array_for(shape)
    m = mask_for(shape, mask_kind)
    return pack(
        a,
        m,
        grid=grid,
        block=block,
        scheme=scheme,
        spec=spec,
        redistribute=redistribute,
        validate=validate,
        **kw,
    )


def run_unpack(
    shape,
    grid,
    block,
    mask_kind,
    scheme,
    spec: MachineSpec = SPEC,
    validate: bool = False,
    **kw,
) -> UnpackResult:
    m = mask_for(shape, mask_kind)
    size = int(m.sum())
    rng = np.random.default_rng(999)
    v = rng.random(size)
    f = array_for(shape)
    return unpack(
        v,
        m,
        f,
        grid=grid,
        block=block,
        scheme=scheme,
        spec=spec,
        validate=validate,
        **kw,
    )
