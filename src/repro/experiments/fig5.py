"""Figure 5 — total UNPACK execution time for SSS and CSS vs block size.

UNPACK's redistribution is two-phase (request + reply), so its
communication exceeds PACK's; the scheme comparison mirrors Figure 4's
without a CMS curve (the compact message scheme has no UNPACK analogue).
"""

from __future__ import annotations

from ..analysis.charts import ascii_chart
from ..analysis.reporting import format_series
from .common import SPEC, mask_label, scale_shape
from .fig3 import series

__all__ = ["run"]


def run(fast: bool = True, spec=SPEC, densities=(0.1, 0.5, 0.9)) -> str:
    parts = ["Figure 5 — UNPACK total execution time vs block size", ""]
    shape_1d = scale_shape((65536,), fast)
    shape_2d = scale_shape((512, 512), fast)
    block_points = 6 if fast else None

    for mk in list(densities) + ["half"]:
        sweep, data = series(
            shape_1d,
            (16,),
            mk,
            spec=spec,
            metric="total",
            schemes=("sss", "css"),
            block_points=block_points,
            unpack_mode=True,
        )
        parts.append(
            format_series(
                f"1-D N={shape_1d[0]}, P=16, mask={mask_label(mk)}", "W", sweep, data
            )
        )
        parts.append("")
        parts.append(ascii_chart(sweep, data))
        parts.append("")
    for mk in list(densities) + ["lt"]:
        sweep, data = series(
            shape_2d,
            (4, 4),
            mk,
            spec=spec,
            metric="total",
            schemes=("sss", "css"),
            block_points=block_points,
            unpack_mode=True,
        )
        parts.append(
            format_series(
                f"2-D N={shape_2d[0]}x{shape_2d[1]}, P=4x4, mask={mask_label(mk)}",
                "W",
                sweep,
                data,
            )
        )
        parts.append("")
        parts.append(ascii_chart(sweep, data))
        parts.append("")
    parts.append(
        "Shape checks: same scheme ordering as PACK (CSS wins at large W / "
        "high density); UNPACK totals exceed the matching PACK totals."
    )
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(run(fast=False))
