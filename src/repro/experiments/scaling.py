"""The 256-processor scaling study (Section 7).

"Other experiments were performed on the CM-5 by using 256 processors
(16x16 for a two-dimensional array) ... we increased the size of the input
arrays 16 times as we increased the number of processors 16 times.  Hence
the local array size was fixed, but the number of processors was
increased 16 times."  — classic weak scaling.

Expected shape: with fixed local size, local computation stays flat while
communication (PRS + many-to-many) grows, so at large P the total is
communication-dominated — the paper's stated observation.
"""

from __future__ import annotations

from ..analysis.reporting import format_table
from .common import SPEC, run_pack, scale_shape

__all__ = ["run", "weak_scaling_rows"]


def weak_scaling_rows(base_1d: int, base_2d: int, fast: bool, spec=SPEC):
    """[(label, P, total, local, prs, m2m)] for the 16x weak-scaling step."""
    rows = []
    cases = [
        (f"1-D N={base_1d}", (base_1d,), (16,)),
        (f"1-D N={base_1d * 16}", (base_1d * 16,), (256,)),
        (f"2-D {base_2d}^2", (base_2d, base_2d), (4, 4)),
        (f"2-D {base_2d * 4}^2", (base_2d * 4, base_2d * 4), (16, 16)),
    ]
    for label, shape, grid in cases:
        res = run_pack(shape, grid, 4, 0.5, "cms", spec=spec)
        rows.append(
            [
                label,
                "x".join(map(str, grid)),
                res.total_ms,
                res.local_ms,
                res.prs_ms,
                res.m2m_ms,
            ]
        )
    return rows


def run(fast: bool = True, spec=SPEC) -> str:
    base_1d = scale_shape((65536,), fast)[0]
    base_2d = scale_shape((512, 512), fast)[0]
    rows = weak_scaling_rows(base_1d, base_2d, fast, spec)
    report = format_table(
        ["Case", "P", "total (ms)", "local (ms)", "prs (ms)", "m2m (ms)"],
        rows,
        title="Weak scaling: 16x processors, 16x elements (fixed local size)",
    )
    return (
        "Scaling study (CMS pack, W = 4, 50% mask)\n\n"
        + report
        + "\n\nShape checks: local time ~flat; communication share grows with "
        "P, dominating the 256-processor totals."
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(fast=False))
