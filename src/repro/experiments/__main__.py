"""CLI: ``python -m repro.experiments <name>... [--full]``.

Names: table1, table2, fig3, fig4, fig5, prs, scaling, all.
``--full`` runs the paper's exact sizes (minutes); default is the fast
16x-reduced configuration (seconds).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures on the simulated CM-5.",
    )
    parser.add_argument(
        "names",
        nargs="+",
        choices=sorted(ALL) + ["all"],
        help="experiments to run",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's exact array sizes (slower)",
    )
    parser.add_argument(
        "--write",
        metavar="FILE",
        help="additionally write the reports as a markdown document",
    )
    args = parser.parse_args(argv)

    names = sorted(ALL) if "all" in args.names else args.names
    sections = []
    for name in names:
        mod = ALL[name]
        start = time.perf_counter()
        report = mod.run(fast=not args.full)
        wall = time.perf_counter() - start
        print("=" * 78)
        print(report)
        print(f"\n[{name}: generated in {wall:.1f}s wall]")
        print()
        sections.append((name, report, wall))

    if args.write:
        size = "paper-exact" if args.full else "fast (16x-reduced)"
        lines = [
            "# Regenerated paper artifacts",
            "",
            f"Sizes: {size}.  All times are *simulated* CM-5 milliseconds; "
            "see docs/cost_model.md.",
            "",
        ]
        for name, report, wall in sections:
            lines.append(f"## {name}")
            lines.append("")
            lines.append("```")
            lines.append(report)
            lines.append("```")
            lines.append("")
            lines.append(f"_Generated in {wall:.1f}s wall time._")
            lines.append("")
        with open(args.write, "w") as fh:
            fh.write("\n".join(lines))
        print(f"[wrote {args.write}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
