"""Prefix-reduction-sum study (Section 7, "Vector Prefix-Reduction-Sum").

Paper findings to reproduce:

* PRS time depends only on the vector length, so it falls as the block
  size grows (fewer tiles -> shorter PS/RS vectors);
* it grows faster for 2-D than 1-D arrays as W shrinks (two PRS rounds,
  and the dimension-0 vector is ``L_1 * T_0`` long);
* the split algorithm beats the direct algorithm as P and M grow
  (the [1, 6] comparison), while direct wins for small P or tiny vectors
  (the paper's selection heuristic).
"""

from __future__ import annotations

import numpy as np

from ..analysis.reporting import format_series, format_table
from ..collectives.pipeline import prs_pipeline
from ..collectives.prefix import prs_ctrl, prs_direct, prs_split
from ..machine.engine import Machine
from ..workloads.grids import block_size_sweep
from .common import SPEC, run_pack, scale_shape

__all__ = ["run", "prs_times", "prs_in_pack_series"]


def prs_times(P: int, M: int, spec=SPEC, seed: int = 0) -> dict[str, float]:
    """Simulated seconds for one PRS of length M on P processors, per
    algorithm (ctrl skipped if the machine lacks a control network)."""
    rng = np.random.default_rng(seed)
    vecs = [rng.integers(0, 100, size=M).astype(np.int64) for _ in range(P)]
    out = {}
    algos = {"direct": prs_direct, "split": prs_split}
    if P & (P - 1) == 0 and P > 1:
        algos["pipeline"] = prs_pipeline
    if spec.has_control_network:
        algos["ctrl"] = prs_ctrl

    for name, fn in algos.items():
        def prog(ctx, _fn=fn):
            result = yield from _fn(ctx, vecs[ctx.rank])
            return result.reduction.sum()

        res = Machine(P, spec).run(prog)
        out[name] = res.elapsed
    return out


def prs_in_pack_series(shape, grid, spec=SPEC, block_points=None):
    """PRS time inside a real PACK, as a function of the block size."""
    sweep = [
        w
        for w in block_size_sweep(shape[-1], grid[-1], block_points)
        if all(n % (p * w) == 0 for n, p in zip(shape, grid))
    ]
    times = []
    for w in sweep:
        res = run_pack(shape, grid, tuple([w] * len(shape)), 0.5, "css", spec=spec)
        times.append(res.prs_ms / 1e3)
    return sweep, times


def run(fast: bool = True, spec=SPEC) -> str:
    parts = ["Prefix-reduction-sum study", ""]

    # Algorithm comparison across P and M (software algorithms; the CM-5
    # control network is shown for reference where applicable).
    soft_spec = spec.without_control_network()
    procs = (4, 16, 64) if fast else (4, 16, 64, 256)
    sizes = (16, 256, 4096) if fast else (16, 256, 4096, 65536)
    rows = []
    for P in procs:
        for M in sizes:
            t = prs_times(P, M, spec=soft_spec)
            winner = min(t, key=t.get)
            rows.append([
                P, M, t["direct"] * 1e3, t["split"] * 1e3,
                t.get("pipeline", float("nan")) * 1e3 if "pipeline" in t else None,
                winner,
            ])
    parts.append(
        format_table(
            ["P", "M", "direct (ms)", "split (ms)", "pipeline (ms)", "winner"],
            rows,
            title="Software PRS algorithms (no control network); pipeline = "
            "the [6] O(tau log P + mu M) tree",
        )
    )
    parts.append("")

    # PRS share inside PACK vs block size, 1-D and 2-D.
    shape_1d = scale_shape((65536,), fast)
    shape_2d = scale_shape((512, 512), fast)
    bp = 6 if fast else None
    s1, t1 = prs_in_pack_series(shape_1d, (16,), spec=spec, block_points=bp)
    s2, t2 = prs_in_pack_series(shape_2d, (4, 4), spec=spec, block_points=bp)
    parts.append(
        format_series(
            f"PRS time within PACK, 1-D N={shape_1d[0]} P=16", "W", s1, {"prs": t1}
        )
    )
    parts.append("")
    parts.append(
        format_series(
            f"PRS time within PACK, 2-D N={shape_2d[0]}^2 P=4x4", "W", s2, {"prs": t2}
        )
    )
    parts.append("")
    parts.append(
        "Shape checks: split wins for large P*M, direct for small; PRS time "
        "falls as W grows, faster for 2-D."
    )
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(run(fast=False))
