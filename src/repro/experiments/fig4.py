"""Figure 4 — total PACK execution time for the three schemes vs block
size (local computation + prefix-reduction-sum + many-to-many exchange).

Expected shapes (Section 7): the compact message scheme gives the best
total time of the three; the compact storage scheme beats the simple
storage scheme when the block size is relatively large and the mask
relatively dense; everything worsens as W shrinks.
"""

from __future__ import annotations

from ..analysis.charts import ascii_chart
from ..analysis.reporting import format_series
from .common import SPEC, mask_label, scale_shape
from .fig3 import series

__all__ = ["run"]


def run(fast: bool = True, spec=SPEC, densities=(0.1, 0.5, 0.9)) -> str:
    parts = ["Figure 4 — PACK total execution time vs block size", ""]
    shape_1d = scale_shape((65536,), fast)
    shape_2d = scale_shape((512, 512), fast)
    block_points = 6 if fast else None

    for mk in list(densities) + ["half"]:
        sweep, data = series(
            shape_1d, (16,), mk, spec=spec, metric="total", block_points=block_points
        )
        parts.append(
            format_series(
                f"1-D N={shape_1d[0]}, P=16, mask={mask_label(mk)}", "W", sweep, data
            )
        )
        parts.append("")
        parts.append(ascii_chart(sweep, data))
        parts.append("")
    for mk in list(densities) + ["lt"]:
        sweep, data = series(
            shape_2d, (4, 4), mk, spec=spec, metric="total", block_points=block_points
        )
        parts.append(
            format_series(
                f"2-D N={shape_2d[0]}x{shape_2d[1]}, P=4x4, mask={mask_label(mk)}",
                "W",
                sweep,
                data,
            )
        )
        parts.append("")
        parts.append(ascii_chart(sweep, data))
        parts.append("")
    parts.append(
        "Shape checks: CMS best overall; CSS beats SSS at large W and high "
        "density; total time falls as W grows."
    )
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(run(fast=False))
