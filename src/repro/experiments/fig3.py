"""Figure 3 — local computation time of SSS / CSS / CMS in PACK vs block
size.

The paper plots, for the 1-D N=65536 (P=16) and 2-D 512x512 (4x4) arrays,
the local-computation time of the three schemes as a function of the block
size, for each mask density.  Expected shapes (Section 7):

* local computation grows as the block size shrinks (tile counts grow),
  for every density;
* the simple storage scheme is flattest in W and wins at cyclic (W = 1);
* the compact schemes win for large W, by a growing margin as density
  rises.
"""

from __future__ import annotations

from ..analysis.charts import ascii_chart
from ..analysis.reporting import format_series
from ..workloads.grids import block_size_sweep
from .common import SPEC, mask_label, run_pack, scale_shape

__all__ = ["run", "series"]

SCHEMES = ("sss", "css", "cms")


def series(
    shape,
    grid,
    mask_kind,
    spec=SPEC,
    metric: str = "local",
    schemes=SCHEMES,
    block_points: int | None = None,
    unpack_mode: bool = False,
    **pack_kw,
):
    """(block sizes, {scheme: [seconds]}) for one panel of Figures 3-5."""
    from .common import run_unpack  # local import to avoid cycles in docs

    sweep = [
        w
        for w in block_size_sweep(shape[-1], grid[-1], block_points)
        if all(n % (p * w) == 0 for n, p in zip(shape, grid))
    ]
    out: dict[str, list[float]] = {s: [] for s in schemes}
    for w in sweep:
        block = tuple([w] * len(shape))
        for s in schemes:
            if unpack_mode:
                res = run_unpack(shape, grid, block, mask_kind, s, spec=spec, **pack_kw)
            else:
                res = run_pack(shape, grid, block, mask_kind, s, spec=spec, **pack_kw)
            if metric == "local":
                out[s].append(res.local_ms / 1e3)
            elif metric == "total":
                out[s].append(res.total_ms / 1e3)
            elif metric == "prs":
                out[s].append(res.prs_ms / 1e3)
            elif metric == "m2m":
                out[s].append(res.m2m_ms / 1e3)
            else:
                raise ValueError(f"unknown metric {metric!r}")
    return sweep, out


def run(fast: bool = True, spec=SPEC, densities=(0.1, 0.5, 0.9)) -> str:
    parts = ["Figure 3 — PACK local computation time vs block size", ""]
    shape_1d = scale_shape((65536,), fast)
    shape_2d = scale_shape((512, 512), fast)
    block_points = 6 if fast else None

    for mk in list(densities) + ["half"]:
        sweep, data = series(
            shape_1d, (16,), mk, spec=spec, metric="local", block_points=block_points
        )
        parts.append(
            format_series(
                f"1-D N={shape_1d[0]}, P=16, mask={mask_label(mk)}",
                "W",
                sweep,
                data,
            )
        )
        parts.append("")
        parts.append(ascii_chart(sweep, data))
        parts.append("")
    for mk in list(densities) + ["lt"]:
        sweep, data = series(
            shape_2d, (4, 4), mk, spec=spec, metric="local", block_points=block_points
        )
        parts.append(
            format_series(
                f"2-D N={shape_2d[0]}x{shape_2d[1]}, P=4x4, mask={mask_label(mk)}",
                "W",
                sweep,
                data,
            )
        )
        parts.append("")
        parts.append(ascii_chart(sweep, data))
        parts.append("")
    parts.append(
        "Shape checks: every curve falls as W grows; SSS flattest and best at "
        "W=1; CSS/CMS best at large W, more so at high density."
    )
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(run(fast=False))
