"""Experiment drivers regenerating every table and figure of Section 7.

Each module exposes ``run(fast=True) -> str`` returning a paper-shaped
text report (and a structured dict for programmatic use).  ``fast=True``
shrinks the array sizes 16-fold (same processor counts, same block-size
sweep shape) so the whole suite runs in seconds; ``fast=False`` uses the
paper's exact sizes.

Command line::

    python -m repro.experiments table1          # Table I (beta1 crossovers)
    python -m repro.experiments table2          # Table II (redistribution)
    python -m repro.experiments fig3 fig4 fig5  # the scheme-comparison figures
    python -m repro.experiments prs scaling     # PRS study + 256-proc scaling
    python -m repro.experiments all --full      # everything at paper size
"""

from . import fig3, fig4, fig5, prs, scaling, sensitivity, table1, table2, topology

ALL = {
    "table1": table1,
    "table2": table2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "prs": prs,
    "scaling": scaling,
    "sensitivity": sensitivity,
    "topology": topology,
}

__all__ = [
    "ALL",
    "fig3",
    "fig4",
    "fig5",
    "prs",
    "scaling",
    "sensitivity",
    "table1",
    "table2",
    "topology",
]
