"""Table II — the Section 6.3 redistribution pre-passes vs direct SSS for
a cyclically distributed input.

The paper's timing convention: the pre-pass time is *added to* the total
time of a compact-message-scheme pack on the block distribution, and
compared against the best direct scheme for cyclic input (SSS).

Published shape (1-D: N = 16384, 65536 on 16 procs; 2-D: 256^2, 512^2 on
4x4):

* 1-D: neither Red.1 nor Red.2 beats SSS (communication detection
  dominates the redistribution cost);
* 2-D: Red.1 beats SSS at low densities, Red.2 at high densities, and
  Red.2's time is almost density-independent.
"""

from __future__ import annotations

from ..analysis.reporting import format_table
from ..workloads.grids import PAPER_DENSITIES
from .common import SPEC, mask_label, run_pack, scale_shape

__all__ = ["run", "rows_for", "PAPER_TABLE2_1D_16384"]

#: Published Table II, 1-D N=16384 column (msec): density -> (SSS, Red.1, Red.2).
PAPER_TABLE2_1D_16384 = {
    0.1: (8.83, 139.70, 382.13),
    0.3: (10.89, 141.80, 382.51),
    0.5: (12.40, 143.29, 382.67),
    0.7: (14.09, 144.86, 382.94),
    0.9: (15.66, 146.63, 383.25),
}


def rows_for(shape, grid, spec=SPEC, densities=PAPER_DENSITIES):
    """[(density, sss_ms, red1_ms, red2_ms)] for a cyclic input array."""
    rows = []
    for dens in densities:
        sss = run_pack(shape, grid, "cyclic", dens, "sss", spec=spec)
        red1 = run_pack(shape, grid, "cyclic", dens, "cms", spec=spec,
                        redistribute="selected")
        red2 = run_pack(shape, grid, "cyclic", dens, "cms", spec=spec,
                        redistribute="whole")
        rows.append((dens, sss.total_ms, red1.total_ms, red2.total_ms))
    return rows


def run(fast: bool = True, spec=SPEC) -> str:
    shapes_1d = [scale_shape((16384,), fast)] + ([] if fast else [(65536,)])
    shapes_2d = [scale_shape((256, 256), fast)] + ([] if fast else [(512, 512)])

    parts = [
        "Table II — redistribution schemes vs SSS for cyclic input "
        "(total PACK time, msec; Red.x = pre-pass + CMS on block)",
        "",
    ]
    for shape in shapes_1d:
        rows = [
            [mask_label(d), sss, r1, r2]
            for d, sss, r1, r2 in rows_for(shape, (16,), spec)
        ]
        parts.append(
            format_table(
                ["Density", "SSS (ms)", "Red.1 (ms)", "Red.2 (ms)"],
                rows,
                title=f"1-D N={shape[0]}, P=16, cyclic input",
            )
        )
        parts.append("")
    for shape in shapes_2d:
        rows = [
            [mask_label(d), sss, r1, r2]
            for d, sss, r1, r2 in rows_for(shape, (4, 4), spec)
        ]
        parts.append(
            format_table(
                ["Density", "SSS (ms)", "Red.1 (ms)", "Red.2 (ms)"],
                rows,
                title=f"2-D N={shape[0]}x{shape[1]}, P=4x4, cyclic input",
            )
        )
        parts.append("")
    parts.append(
        "Shape checks: 1-D — both pre-passes lose to SSS; 2-D — Red.1 wins "
        "at low density, Red.2 at high density; Red.2 nearly density-flat."
    )
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(run(fast=False))
