"""Architecture-independence study (paper Section 2).

The paper argues its algorithms, while analyzed under the two-level
(virtual crossbar) model, "can be efficiently implemented on meshes and
hypercubes with wormhole routing".  This driver re-runs PACK with the same
CM-5 cost constants plus per-hop wormhole charges on a ring, 2-D mesh,
2-D torus and hypercube, and reports how far each drifts from the
crossbar baseline — a few percent at realistic ``tau_hop/tau`` ratios for
the low-diameter networks, which is the portability claim quantified.
"""

from __future__ import annotations

from ..analysis.reporting import format_table
from ..machine.topology import Hypercube, Mesh2D, Ring, make_topology
from .common import SPEC, run_pack, scale_shape

__all__ = ["run", "topology_rows"]


def topology_rows(shape, grid, nprocs: int, tau_hop: float, spec=SPEC):
    """[(name, avg hops, total ms, drift %)] for each interconnect."""
    topologies = [("crossbar", None)]
    if nprocs & (nprocs - 1) == 0:
        topologies.append(("hypercube", Hypercube(nprocs)))
    side = int(round(nprocs**0.5))
    if side * side == nprocs:
        topologies.append(("torus", make_topology("torus", nprocs)))
        topologies.append(("mesh", Mesh2D(nprocs, rows=side, cols=side)))
    topologies.append(("ring", Ring(nprocs)))

    rows = []
    base = None
    for name, topo in topologies:
        s = spec if topo is None else spec.with_topology(topo, tau_hop=tau_hop)
        res = run_pack(shape, grid, 8, 0.5, "cms", spec=s)
        total = res.total_ms
        if base is None:
            base = total
        avg = 0.0 if topo is None else topo.average_distance()
        rows.append((name, avg, total, 100.0 * (total - base) / base))
    return rows


def run(fast: bool = True, spec=SPEC) -> str:
    shape = scale_shape((65536,), fast)
    nprocs = 16
    parts = [
        "Topology study — PACK total vs interconnect "
        f"(N={shape[0]}, P={nprocs}, W=8, 50% mask, tau_hop=5us)",
        "",
    ]
    rows = [
        [name, f"{avg:.2f}", total, f"{drift:+.1f}%"]
        for name, avg, total, drift in topology_rows(shape, (nprocs,), nprocs, 5e-6, spec)
    ]
    parts.append(
        format_table(["network", "avg hops", "total (ms)", "vs crossbar"], rows)
    )
    parts.append("")
    parts.append(
        "Shape checks: low-diameter networks (hypercube, torus, mesh) stay "
        "within a few percent of the crossbar at wormhole-era per-hop "
        "costs; drift orders by average routing distance — the paper's "
        "portability argument."
    )
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(run(fast=False))
