"""Table I — beta1 crossover block sizes (CSS beats SSS above beta1).

The paper reports, for each local size and mask density, the block size
above which the compact storage scheme's local computation beats the
simple storage scheme's.  We compute the same crossovers from the
Section 6.4 model (which charges exactly what the simulator charges — the
test suite asserts their equality) over the paper's power-of-two block
sweep, and print the published values alongside.
"""

from __future__ import annotations

from ..analysis.crossover import beta1_table, beta2_table
from ..analysis.reporting import format_table, fmt_value
from ..workloads.grids import PAPER_DENSITIES
from .common import SPEC, mask_label

__all__ = ["run", "PAPER_TABLE1_1D", "PAPER_TABLE1_2D"]

#: Published Table I values: local size -> [10%, 30%, 50%, 70%, 90%, LT].
PAPER_TABLE1_1D = {
    1024: [64, 8, 8, 4, 4, 4],
    2048: [128, 16, 8, 4, 4, 4],
    4096: [512, 16, 8, 4, 4, 4],
    8192: [2048, 8, 8, 4, 4, 4],
}
PAPER_TABLE1_2D = {
    16: [float("inf"), 4, 4, 2, 2, 2],
    32: [float("inf"), 8, 2, 2, 2, 2],
    64: [32, 8, 2, 2, 2, 2],
    128: [16, 4, 4, 2, 2, 2],
}

_KINDS_1D = list(PAPER_DENSITIES) + ["half"]
_KINDS_2D = list(PAPER_DENSITIES) + ["lt"]


def run(fast: bool = True, spec=SPEC) -> str:
    """Regenerate Table I; ``fast`` trims the 1-D sizes to the two ends."""
    shapes_1d = [(16384,), (131072,)] if fast else [
        (16384,), (32768,), (65536,), (131072,)
    ]
    shapes_2d = [(64, 64), (512, 512)] if fast else [
        (64, 64), (128, 128), (256, 256), (512, 512)
    ]

    t1d = beta1_table(shapes_1d, (16,), _KINDS_1D, spec=spec)
    t2d = beta1_table(shapes_2d, (4, 4), _KINDS_2D, spec=spec)
    b2_1d = beta2_table(shapes_1d, (16,), _KINDS_1D, spec=spec)

    headers = ["Local size"] + [mask_label(k) for k in _KINDS_1D] + ["(paper)"]
    rows_1d = []
    for shape in shapes_1d:
        local = shape[0] // 16
        row = [local] + [t1d[(shape, k)] for k in _KINDS_1D]
        paper = PAPER_TABLE1_1D.get(local)
        row.append("/".join(fmt_value(float(v)) for v in paper) if paper else "-")
        rows_1d.append(row)

    rows_2d = []
    for shape in shapes_2d:
        local = shape[0] // 4
        row = [local] + [t2d[(shape, k)] for k in _KINDS_2D]
        paper = PAPER_TABLE1_2D.get(local)
        row.append("/".join(fmt_value(float(v)) for v in paper) if paper else "-")
        rows_2d.append(row)

    rows_b2 = []
    for shape in shapes_1d:
        rows_b2.append([shape[0] // 16] + [b2_1d[(shape, k)] for k in _KINDS_1D] + ["-"])

    parts = [
        "Table I — beta1: block size above which CSS beats SSS (local computation)",
        "",
        format_table(headers, rows_1d, title="1-D arrays, P = 16"),
        "",
        format_table(
            ["Local/dim"] + [mask_label(k) for k in _KINDS_2D] + ["(paper)"],
            rows_2d,
            title="2-D arrays, P = 4 x 4 (equal block size per dimension)",
        ),
        "",
        format_table(
            headers[:-1] + ["(paper)"],
            rows_b2,
            title="beta2: block size above which CMS beats CSS (not tabulated in paper)",
        ),
        "",
        "Shape checks: beta1 > 1 everywhere (SSS best for cyclic);",
        "beta1 falls as density rises; beta1 at 10% grows with local size.",
    ]
    return "\n".join(parts)


def data(fast: bool = True, spec=SPEC) -> dict:
    """Structured beta1 values for programmatic consumers / benchmarks."""
    shapes_1d = [(16384,), (131072,)] if fast else [
        (16384,), (32768,), (65536,), (131072,)
    ]
    return {
        "1d": beta1_table(shapes_1d, (16,), _KINDS_1D, spec=spec),
        "2d": beta1_table([(64, 64)], (4, 4), _KINDS_2D, spec=spec),
    }


if __name__ == "__main__":  # pragma: no cover
    print(run(fast=False))
