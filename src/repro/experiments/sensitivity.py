"""Sensitivity studies beyond the paper's CM-5 point.

Two questions the paper could not ask on a single machine:

1. **Machine balance** — how do the scheme rankings move as the machine's
   bandwidth (``mu``) and compute (``delta``) costs scale relative to the
   CM-5?  The compact message scheme's whole advantage is fewer words on
   the wire and fewer scattered local ops, so it should gain on
   bandwidth-starved machines and lose its margin on compute-starved
   ones.

2. **Higher ranks** — the algorithms accept any rank; the paper evaluates
   1-D/2-D only.  We run the same PACK on 1-D/2-D/3-D arrays of equal
   total size and show the ranking overhead tracks the per-dimension tile
   structure exactly as the d-dimensional analysis predicts.
"""

from __future__ import annotations

from ..analysis.reporting import format_table
from .common import SPEC, run_pack, scale_shape

__all__ = ["run", "balance_rows", "rank_rows"]


def balance_rows(shape, grid, spec=SPEC):
    """[(machine label, sss, css, cms, winner)] across machine balances."""
    variants = [
        ("cm5 (baseline)", spec),
        ("4x bandwidth", spec.with_(mu=spec.mu / 4)),
        ("1/4 bandwidth", spec.with_(mu=spec.mu * 4)),
        ("4x cpu", spec.with_(delta=spec.delta / 4)),
        ("1/4 cpu", spec.with_(delta=spec.delta * 4)),
    ]
    rows = []
    for label, s in variants:
        times = {}
        for scheme in ("sss", "css", "cms"):
            times[scheme] = run_pack(shape, grid, 8, 0.7, scheme, spec=s).total_ms
        winner = min(times, key=times.get)
        rows.append(
            (label, times["sss"], times["css"], times["cms"], winner)
        )
    return rows


def rank_rows(n_total: int, spec=SPEC):
    """[(rank label, layout, total, local, prs)] for equal-size 1/2/3-D."""
    import math

    side2 = int(math.isqrt(n_total))
    side3 = round(n_total ** (1 / 3))
    cases = [
        ("1-D", (n_total,), (16,), (8,)),
        ("2-D", (side2, side2), (4, 4), (8, 8)),
        ("3-D", (side3 * 2, side3, side3 // 2), (4, 2, 2), (4, 4, 4)),
    ]
    rows = []
    for label, shape, grid, block in cases:
        if any(n % (p * w) != 0 for n, p, w in zip(shape, grid, block)):
            continue
        res = run_pack(shape, grid, block, 0.5, "cms", spec=spec)
        rows.append(
            (
                f"{label} {'x'.join(map(str, shape))}",
                "x".join(map(str, grid)),
                res.total_ms,
                res.local_ms,
                res.prs_ms,
            )
        )
    return rows


def run(fast: bool = True, spec=SPEC) -> str:
    shape = scale_shape((65536,), fast)
    parts = [
        "Sensitivity studies",
        "",
        format_table(
            ["machine", "SSS (ms)", "CSS (ms)", "CMS (ms)", "winner"],
            [list(r) for r in balance_rows(shape, (16,), spec)],
            title=f"Machine balance (N={shape[0]}, P=16, W=8, 70% mask)",
        ),
        "",
    ]
    n_total = 4096 if fast else 65536
    rows = [list(r) for r in rank_rows(n_total, spec)]
    parts.append(
        format_table(
            ["case", "grid", "total (ms)", "local (ms)", "prs (ms)"],
            rows,
            title=f"Array rank study (N={n_total} total, 16 processors, CMS)",
        )
    )
    parts.append("")
    parts.append(
        "Shape checks: CMS's margin grows as bandwidth shrinks and narrows "
        "as compute shrinks; higher ranks pay more PRS (one round per "
        "dimension) for the same total size."
    )
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(run(fast=False))
