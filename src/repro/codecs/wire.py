"""Flat wire encodings for runtime transport payloads.

The multiprocessing transport originally pickled every message.  For the
payloads the redistribution stage actually sends — numpy arrays and the
two paper message encodings (:class:`~repro.core.messages.PairMessage`,
:class:`~repro.core.messages.SegmentMessage`) — pickling is pure
overhead: the objects are already flat buffers plus a few integers of
geometry.  This module frames them as ``meta + raw bytes`` so the
shared-memory ring transport (:mod:`repro.runtime.shm_ring`) can move
them with plain memoryview copies, and falls back to pickle for
anything else (collective-protocol tuples, count dicts, scalars).

CMS on the wire
---------------
The paper's CMS scheme (Section 6) exists to shrink message volume: a
maximal run of consecutive destination ranks ships as
``(base-rank, count, data...)`` — ``E + 2*Gs`` words — instead of the
SSS-style ``(rank, datum)`` pair list — ``2*E`` words.  The same
trade-off exists on a real wire: a :class:`PairMessage` whose ranks form
few long runs is cheaper to ship as segments.  ``encode_payload`` with
``codec="auto"`` re-derives the runs (cheap: one vectorized diff over
indices the sender already computed) and picks whichever encoding is
smaller; ``"cms"`` / ``"sss"`` force one side for A/B measurement — the
β₂ crossover of ``BENCH_runtime.json``'s ``codec_crossover`` section.
The decoder always reconstructs the exact original object
(:func:`~repro.core.messages.expand_segments` inverts the run-length
form bit-for-bit), so results are identical whichever side of the
crossover a message lands on.

Wire format
-----------
One byte stream per payload; the transport carries a separate
``wire_kind`` byte.  Arrays are framed as::

    u8 len(dtype.str) | dtype.str ascii | u8 ndim | i64 shape... | raw bytes

and composite kinds are a fixed sequence of framed arrays.  Decoding
builds numpy views over the received buffer — no copy beyond the
transport's own copy out of shared memory.  The views inherit the
buffer's writability: the ring transport hands a fresh ``bytearray``
per message, so received payloads are mutable, exactly like the queue
transport's unpickled copies and the simulator's deliveries.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any

import numpy as np

__all__ = [
    "CODEC_MODES",
    "WIRE_NAMES",
    "W_PICKLE",
    "W_NONE",
    "W_ND",
    "W_PAIR_SSS",
    "W_PAIR_CMS",
    "W_SEG",
    "decode_payload",
    "encode_payload",
    "pair_runs",
    "resolve_codec",
    "wire_bytes_pair_cms",
    "wire_bytes_pair_sss",
]

#: Wire kinds (one byte on the transport record header).
W_PICKLE = 0    # pickled bytes: any Python object
W_NONE = 1      # payload None, zero bytes
W_ND = 2        # a single ndarray
W_PAIR_SSS = 3  # PairMessage as (ranks, values) arrays — the SSS pair form
W_PAIR_CMS = 4  # PairMessage as (bases, counts, values) — CMS segment form
W_SEG = 5       # SegmentMessage as (bases, counts, values)

WIRE_NAMES = {
    W_PICKLE: "pickle",
    W_NONE: "none",
    W_ND: "ndarray",
    W_PAIR_SSS: "pair-sss",
    W_PAIR_CMS: "pair-cms",
    W_SEG: "segment",
}

#: Codec modes accepted by :func:`encode_payload` / backend ``codec=``.
#: ``auto`` picks the smaller encoding per message; ``sss`` / ``cms``
#: force one side of the crossover; ``pickle`` disables the array fast
#: paths entirely (the PR-6 wire, for A/B measurement).
CODEC_MODES = ("auto", "sss", "cms", "pickle")

_NDIM = struct.Struct("<B")
_DIM = struct.Struct("<q")


def resolve_codec(codec: str | None) -> str:
    """Resolve a codec mode: explicit arg > ``REPRO_WIRE_CODEC`` > auto."""
    if codec is None:
        codec = os.environ.get("REPRO_WIRE_CODEC", "auto")
    if codec not in CODEC_MODES:
        raise ValueError(
            f"unknown wire codec {codec!r}; pick from {CODEC_MODES}"
        )
    return codec


# ------------------------------------------------------------ array framing
def _frame_array(arr: np.ndarray, parts: list) -> int:
    """Append one array's meta + raw bytes to ``parts``; return byte count."""
    shape = arr.shape  # before ascontiguousarray, which promotes 0-d to 1-d
    arr = np.ascontiguousarray(arr)
    ds = arr.dtype.str.encode("ascii")
    meta = bytes([len(ds)]) + ds + _NDIM.pack(len(shape)) + b"".join(
        _DIM.pack(s) for s in shape
    )
    parts.append(meta)
    mv = memoryview(arr).cast("B")
    parts.append(mv)
    return len(meta) + len(mv)


def _unframe_array(buf, offset: int) -> tuple[np.ndarray, int]:
    """Read one framed array as a view over ``buf``.

    The view's writability follows the buffer's: writable for a
    ``bytearray`` (what the ring transport delivers), read-only for
    immutable ``bytes``.
    """
    dlen = buf[offset]
    offset += 1
    dtype = np.dtype(bytes(buf[offset : offset + dlen]).decode("ascii"))
    offset += dlen
    ndim = buf[offset]
    offset += 1
    shape = tuple(
        _DIM.unpack_from(buf, offset + 8 * i)[0] for i in range(ndim)
    )
    offset += 8 * ndim
    count = int(np.prod(shape)) if ndim else 1
    nbytes = count * dtype.itemsize
    arr = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
    return arr.reshape(shape), offset + nbytes


# -------------------------------------------------------------- CMS geometry
def pair_runs(ranks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Maximal runs of consecutive ranks: ``(bases, counts)``.

    The inverse of :func:`repro.core.messages.expand_segments` — one
    vectorized diff, exploiting the same consecutive-local-indices
    invariant the PR 3 placement fast paths use.
    """
    n = ranks.size
    if n == 0:
        return ranks[:0], np.empty(0, dtype=np.int64)
    breaks = np.flatnonzero(np.asarray(ranks[1:]) != np.asarray(ranks[:-1]) + 1) + 1
    starts = np.concatenate(([0], breaks))
    counts = np.diff(np.append(starts, n))
    return ranks[starts], counts


def wire_bytes_pair_sss(count: int, itemsize: int = 8) -> int:
    """Wire payload bytes of a pair-encoded message (meta excluded)."""
    return count * (8 + itemsize)


def wire_bytes_pair_cms(count: int, segments: int, itemsize: int = 8) -> int:
    """Wire payload bytes of a segment-encoded message (meta excluded).

    The byte-level β₂ crossover: CMS wins when
    ``16 * segments < 8 * count``, i.e. mean run length above 2 —
    exactly the paper's word-level ``E + 2*Gs < 2*E`` condition.
    """
    return count * itemsize + segments * 16


# ------------------------------------------------------------------- encode
def encode_payload(payload: Any, codec: str = "auto") -> tuple[int, list, int]:
    """Encode ``payload`` for the wire.

    Returns ``(wire_kind, parts, nbytes)`` where ``parts`` is a list of
    buffer-like objects (bytes / memoryviews) whose concatenation is the
    wire payload and ``nbytes`` is its total length.  Array payload
    parts are memoryviews over the caller's arrays — the transport must
    finish copying them before returning control to the program (sends
    in this library never mutate a payload after posting, matching the
    simulator's contract).
    """
    if payload is None:
        return W_NONE, [], 0
    if codec != "pickle":
        from ..core.messages import PairMessage, SegmentMessage

        if isinstance(payload, np.ndarray):
            parts: list = []
            n = _frame_array(payload, parts)
            return W_ND, parts, n
        if isinstance(payload, PairMessage):
            use_cms = False
            bases = counts = None
            if codec in ("auto", "cms"):
                bases, counts = pair_runs(payload.ranks)
                if codec == "cms":
                    use_cms = True
                else:
                    itemsize = payload.values.dtype.itemsize
                    use_cms = (
                        wire_bytes_pair_cms(payload.count, int(bases.size), itemsize)
                        < wire_bytes_pair_sss(payload.count, itemsize)
                    )
            parts = []
            if use_cms:
                n = _frame_array(bases, parts)
                n += _frame_array(counts, parts)
                n += _frame_array(payload.values, parts)
                return W_PAIR_CMS, parts, n
            n = _frame_array(payload.ranks, parts)
            n += _frame_array(payload.values, parts)
            return W_PAIR_SSS, parts, n
        if isinstance(payload, SegmentMessage):
            # Already the paper's CMS form; frame it as-is.
            parts = []
            n = _frame_array(payload.bases, parts)
            n += _frame_array(payload.counts, parts)
            n += _frame_array(payload.values, parts)
            return W_SEG, parts, n
    data = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
    return W_PICKLE, [data], len(data)


# ------------------------------------------------------------------- decode
def decode_payload(wire_kind: int, buf) -> Any:
    """Decode one wire payload; the exact inverse of :func:`encode_payload`.

    ``buf`` is the received byte buffer.  Array results are views over
    it whose writability follows the buffer's — transports must pass a
    mutable buffer (``bytearray``) so programs may mutate received
    payloads, the receive contract every other backend provides.
    """
    if wire_kind == W_NONE:
        return None
    if wire_kind == W_PICKLE:
        return pickle.loads(buf)
    if wire_kind == W_ND:
        arr, _ = _unframe_array(buf, 0)
        return arr
    from ..core.messages import PairMessage, SegmentMessage, expand_segments

    if wire_kind == W_PAIR_SSS:
        ranks, off = _unframe_array(buf, 0)
        values, _ = _unframe_array(buf, off)
        return PairMessage(ranks=ranks, values=values)
    if wire_kind == W_PAIR_CMS:
        bases, off = _unframe_array(buf, 0)
        counts, off = _unframe_array(buf, off)
        values, _ = _unframe_array(buf, off)
        ranks = expand_segments(bases, counts).astype(bases.dtype, copy=False)
        return PairMessage(ranks=ranks, values=values)
    if wire_kind == W_SEG:
        bases, off = _unframe_array(buf, 0)
        counts, off = _unframe_array(buf, off)
        values, _ = _unframe_array(buf, off)
        return SegmentMessage(bases=bases, counts=counts, values=values)
    raise ValueError(f"unknown wire kind {wire_kind!r}")
