"""Wire codecs for the runtime transports.

:mod:`repro.codecs.wire` turns the payload objects PACK/UNPACK actually
puts on the network — numpy arrays, :class:`~repro.core.messages.PairMessage`,
:class:`~repro.core.messages.SegmentMessage` — into flat byte streams a
shared-memory ring buffer can carry without pickling, including the
paper's CMS run-length segment encoding *on the wire* (Section 6: ship
``(base-rank, count, data...)`` runs instead of ``(rank, datum)`` pairs).
"""

from .wire import (
    CODEC_MODES,
    WIRE_NAMES,
    decode_payload,
    encode_payload,
    pair_runs,
    resolve_codec,
    wire_bytes_pair_cms,
    wire_bytes_pair_sss,
)

__all__ = [
    "CODEC_MODES",
    "WIRE_NAMES",
    "decode_payload",
    "encode_payload",
    "pair_runs",
    "resolve_codec",
    "wire_bytes_pair_cms",
    "wire_bytes_pair_sss",
]
